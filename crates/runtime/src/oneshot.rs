//! A single-use completion slot: one value, one waiter, park/unpark.
//!
//! The service dispatcher (`mars-serve`) completes each queued request by
//! writing its response into a slot the submitting thread is blocked on.
//! A channel would allocate a node per request; [`OneShotSlot`] instead
//! lives on the **submitter's stack frame** — the same dep-free,
//! allocation-free publish discipline as [`WorkerPool::scatter`]'s
//! `TaskHeader` (publish = release store + `unpark`), just pointed the
//! other way: there the caller publishes work to workers, here a worker
//! publishes a result back to the caller.
//!
//! ## Protocol
//!
//! * The **waiting thread** constructs the slot (capturing its own
//!   [`Thread`] handle), hands out a reference, and blocks in
//!   [`OneShotSlot::wait`] (spin briefly, then park).
//! * Exactly **one** other party calls [`OneShotSlot::fill`] exactly once:
//!   it writes the value, flips the state `EMPTY → FULL` with release
//!   ordering, and unparks the waiter. The filler clones the waiter handle
//!   *before* the store lands — the moment the state reads `FULL`, the
//!   waiter may return and the slot's frame may die, exactly like the
//!   scatter header's final `fetch_sub`.
//! * `wait` consumes the value. Spurious unparks are absorbed by
//!   re-checking the state.
//!
//! [`WorkerPool::scatter`]: crate::WorkerPool::scatter

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::thread::{self, Thread};

use crate::pool::SPIN_BEFORE_PARK;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TAKEN: u8 = 2;

/// A one-value, one-waiter completion slot (see the module docs).
pub struct OneShotSlot<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
    /// The constructing (waiting) thread, unparked by `fill`.
    waiter: Thread,
}

// SAFETY: the state machine serializes all access to `value` — `fill`
// writes it strictly before the `EMPTY → FULL` release store, `wait`
// reads it strictly after acquiring `FULL` — so distinct threads never
// touch the cell concurrently. `T: Send` because the value crosses from
// the filling thread to the waiting thread.
unsafe impl<T: Send> Sync for OneShotSlot<T> {}

impl<T> OneShotSlot<T> {
    /// An empty slot whose waiter is the calling thread. Only that thread
    /// may [`wait`](Self::wait) on it.
    pub fn new() -> Self {
        Self {
            state: AtomicU8::new(EMPTY),
            value: UnsafeCell::new(None),
            waiter: thread::current(),
        }
    }

    /// Completes the slot with `value` and wakes the waiter. Must be
    /// called at most once; the slot (and its stack frame) may be gone
    /// the instant the state store lands, so nothing touches `self`
    /// afterwards.
    pub fn fill(&self, value: T) {
        // Clone the handle BEFORE publishing: after the store below the
        // waiter may return from `wait` and free the slot's frame.
        let waiter = self.waiter.clone();
        // SAFETY: state is still EMPTY (single-fill contract), so the
        // waiter is parked/spinning and not reading the cell.
        unsafe { *self.value.get() = Some(value) };
        let prev = self.state.swap(FULL, Ordering::Release);
        debug_assert_eq!(prev, EMPTY, "OneShotSlot filled twice");
        waiter.unpark();
    }

    /// Blocks until the slot is filled and returns the value. Must be
    /// called from the constructing thread (the one `unpark` targets),
    /// at most once.
    pub fn wait(&self) -> T {
        self.wait_bounded(None)
    }

    /// [`wait`](Self::wait) with a bounded park interval: past `wake_by`,
    /// the thread re-checks the slot at a coarse cadence instead of
    /// parking indefinitely.
    ///
    /// This does **not** time out — it cannot: the filler holds a raw
    /// pointer to this slot's stack frame, so abandoning the wait before
    /// the fill would be a use-after-free. The deadline's *semantics* live
    /// with the producer (e.g. the service dispatcher completes expired
    /// requests with a typed error at dequeue time); this bound only
    /// guards the waiter against a lost wakeup once its deadline has
    /// passed and the producer's fill is imminent.
    pub fn wait_bounded(&self, wake_by: Option<std::time::Instant>) -> T {
        debug_assert_eq!(
            thread::current().id(),
            self.waiter.id(),
            "OneShotSlot::wait must run on the constructing thread"
        );
        let mut spins = 0;
        while self.state.load(Ordering::Acquire) != FULL {
            if spins < SPIN_BEFORE_PARK {
                spins += 1;
                std::hint::spin_loop();
            } else {
                match wake_by {
                    None => thread::park(),
                    Some(deadline) => {
                        let now = std::time::Instant::now();
                        let slice = if now < deadline {
                            deadline - now
                        } else {
                            // Past deadline: the fill is the producer's
                            // (imminent) responsibility; poll coarsely.
                            std::time::Duration::from_millis(1)
                        };
                        thread::park_timeout(slice);
                    }
                }
            }
        }
        // SAFETY: FULL acquired ⇒ the filler's write happens-before this
        // read, and the filler never touches the cell again.
        let value = unsafe { (*self.value.get()).take() };
        // ORDERING: relaxed suffices — TAKEN only feeds same-thread
        // debug assertions (`is_full`, double-wait detection); no other
        // thread reads the state after FULL, and the filler is done.
        self.state.store(TAKEN, Ordering::Relaxed);
        value.expect("OneShotSlot waited twice")
    }

    /// Whether the slot has been filled (and not yet consumed).
    pub fn is_full(&self) -> bool {
        self.state.load(Ordering::Acquire) == FULL
    }
}

impl<T> Default for OneShotSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fill_then_wait_same_thread() {
        let slot = OneShotSlot::new();
        slot.fill(41u32);
        assert!(slot.is_full());
        assert_eq!(slot.wait(), 41);
        assert!(!slot.is_full());
    }

    #[test]
    fn cross_thread_fill_wakes_a_parked_waiter() {
        // Arc'd only so the test can move it into the filler; the service
        // uses a stack slot plus a raw pointer under its own protocol.
        let slot = Arc::new(OneShotSlot::new());
        let filler = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                // Let the waiter run past its spin phase into park.
                thread::sleep(Duration::from_millis(20));
                slot.fill(String::from("done"));
            })
        };
        assert_eq!(slot.wait(), "done");
        filler.join().unwrap();
    }

    #[test]
    fn many_slots_complete_under_contention() {
        // Stress the publish/consume ordering: a filler thread completes
        // slots as fast as the waiter creates them. Shortened under Miri —
        // its state-machine checks fire on the first crossing, and each
        // interpreted round is ~1000x slower than native.
        let rounds: u64 = if cfg!(miri) { 8 } else { 200 };
        for round in 0..rounds {
            let slot = Arc::new(OneShotSlot::new());
            let filler = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || slot.fill(round * 3))
            };
            assert_eq!(slot.wait(), round * 3);
            filler.join().unwrap();
        }
    }
}
