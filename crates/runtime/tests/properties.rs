//! Property tests for the determinism contract of `mars-runtime`:
//! scatter/merge results must be a pure function of the *sharding* — never
//! of the worker count or of thread scheduling.
//!
//! Float summation order is the sensitive observable (f32 addition is not
//! associative), so the properties fold per-shard f32 sums in shard order
//! and require bit-identical results across pool sizes and repeated runs.

use mars_runtime::{chunk_ranges, shard_items, WorkerPool};
use proptest::prelude::*;

/// Shards `items` into `shards` buffers, scatters a per-shard f32 sum over
/// `pool`, and folds the results in shard order.
fn sharded_sum(pool: &WorkerPool, items: &[u32], shards: usize) -> (f32, Vec<f32>) {
    let mut bufs: Vec<Vec<u32>> = vec![Vec::new(); shards];
    shard_items(items, bufs.iter_mut(), |&v| v as usize);
    let partials = pool.scatter(&mut bufs, |_, buf| {
        // Deliberately order-sensitive: sequential f32 accumulation.
        buf.iter().fold(0.0f32, |acc, &v| acc + (v as f32).sqrt())
    });
    let merged = partials.iter().fold(0.0f32, |acc, &p| acc + p);
    (merged, partials)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a fixed shard count, every pool size 1..=8 must produce
    /// bit-identical per-shard partials and merged totals.
    #[test]
    fn scatter_merge_is_worker_count_invariant(
        items in proptest::collection::vec(0u32..10_000, 0..200),
        shards in 1usize..8,
    ) {
        let reference = sharded_sum(&WorkerPool::new(1), &items, shards);
        for workers in 2usize..=8 {
            let got = sharded_sum(&WorkerPool::new(workers), &items, shards);
            prop_assert!(
                got.0.to_bits() == reference.0.to_bits(),
                "merged sum diverged at {} workers", workers
            );
            prop_assert!(got.1 == reference.1, "partials diverged at {} workers", workers);
        }
    }

    /// Repeated scatters on one pool are bit-identical (no cross-call state).
    #[test]
    fn scatter_is_reproducible_on_a_reused_pool(
        items in proptest::collection::vec(0u32..10_000, 0..150),
        shards in 1usize..6,
    ) {
        let pool = WorkerPool::new(4);
        let a = sharded_sum(&pool, &items, shards);
        let b = sharded_sum(&pool, &items, shards);
        prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
        prop_assert_eq!(a.1, b.1);
    }

    /// `shard_items` is a partition: every item lands in exactly one buffer,
    /// order within a buffer follows input order.
    #[test]
    fn shard_items_is_an_order_preserving_partition(
        items in proptest::collection::vec(0u32..1_000, 0..120),
        shards in 1usize..8,
    ) {
        let mut bufs: Vec<Vec<u32>> = vec![Vec::new(); shards];
        shard_items(&items, bufs.iter_mut(), |&v| v as usize);
        let total: usize = bufs.iter().map(Vec::len).sum();
        prop_assert_eq!(total, items.len());
        for (s, buf) in bufs.iter().enumerate() {
            // Each buffer is exactly the input filtered to its shard, in
            // input order.
            let expect: Vec<u32> = items
                .iter()
                .copied()
                .filter(|&v| v as usize % shards == s)
                .collect();
            prop_assert!(buf == &expect, "shard {} mis-partitioned", s);
        }
    }

    /// `chunk_ranges` tiles `0..len` exactly, in order, with near-equal
    /// sizes (max spread 1).
    #[test]
    fn chunk_ranges_tile_exactly(len in 0usize..500, shards in 1usize..12) {
        let ranges = chunk_ranges(len, shards);
        prop_assert!(!ranges.is_empty());
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges[ranges.len() - 1].end, len);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        if len > 0 {
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            prop_assert!(max - min <= 1, "unbalanced chunks: {} vs {}", min, max);
        }
    }
}
