//! CLI for the workspace audit: `cargo run -p mars-audit -- check`.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use mars_audit::{check_workspace, ALL_RULES};

fn usage() -> ExitCode {
    eprintln!("usage: mars-audit <check [--root PATH]> | <rules>");
    ExitCode::from(2)
}

/// Workspace root: `--root` wins, else the crate's grandparent (cargo sets
/// `CARGO_MANIFEST_DIR` for `cargo run`), else the current directory.
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    if let Ok(manifest) = env::var("CARGO_MANIFEST_DIR") {
        let crate_dir = PathBuf::from(manifest);
        if let Some(root) = crate_dir.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    match args.next().as_deref() {
        Some("rules") => {
            for rule in ALL_RULES {
                println!("{:<17} {}", rule.name(), rule.contract());
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let root = workspace_root(root);
            match check_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("mars-audit: clean ({})", root.display());
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for finding in &findings {
                        println!("{finding}");
                    }
                    eprintln!(
                        "mars-audit: {} finding(s) — see rules in \
                         crates/audit/src/lib.rs",
                        findings.len()
                    );
                    ExitCode::FAILURE
                }
                Err(err) => {
                    eprintln!("mars-audit: io error: {err}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
