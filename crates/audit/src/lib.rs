//! Repo-invariant static analysis for the MARS workspace.
//!
//! The engine's headline guarantees are *contracts*, not emergent properties:
//! bit-identical training results at any worker count, NaN-total ordering in
//! every ranking path, counter-keyed sampling, Lemire-only range mapping.
//! Property tests only catch a violation they happen to exercise; this crate
//! makes each contract a named, greppable rule that fails the build the moment
//! a future change reintroduces an already-eradicated bug class.
//!
//! Run as `cargo run -p mars-audit -- check` (CI does the same). Findings
//! print as `file:line: rule: message` and `check` exits nonzero on any hit.
//!
//! # Rules
//!
//! - **`unsafe-safety`** — every `unsafe` block or fn must be covered by a
//!   `// SAFETY:` comment (or a `# Safety` doc section), and `unsafe` in
//!   `src/` is confined to the modules that own the lock-free/SIMD surface:
//!   `tensor::simd`, `runtime::{pool,oneshot,rng}`, `serve::service`.
//!   Established when PR 3 introduced the SIMD tiers and allocation-free
//!   `WorkerPool::scatter`; the allowlist is the review boundary for
//!   ROADMAP item 3 (lock-free training scale-out).
//! - **`nan-ordering`** — no `partial_cmp` float comparisons outside
//!   `serve::order`. PR 5 eradicated the NaN-unsound
//!   `partial_cmp(..).unwrap()` sort from `MultiFacetModel::recommend` and
//!   introduced `rank_cmp` (NaN ranks strictly last, ties break by item id);
//!   everything else uses `f32::total_cmp`. This rule flags *any*
//!   `partial_cmp` in code — stricter than the original bug shape on
//!   purpose, since `.unwrap_or(Equal)` variants are just as order-unsound.
//! - **`determinism`** — the deterministic crates (`data`, `tensor`, `core`,
//!   `optim`, `metrics`, `baselines`) must not touch wall clocks or OS
//!   entropy: `Instant::now`, `SystemTime`, `StdRng`, `thread_rng` are
//!   banned in their `src/` (PR 4: no baseline `fit()` uses `StdRng`;
//!   batches are pure functions of `(seed, batch_index)`). `core::io` is
//!   allowlisted for fsync timing, and `runtime`/`serve`/`bench` are out of
//!   scope (they own clocks by design). Trailing `#[cfg(test)]` modules are
//!   exempt — property tests legitimately compare against `StdRng`
//!   reference streams.
//! - **`lemire-only`** — no `%` range reduction on raw RNG words. PR 9 moved
//!   every draw path onto `mars_runtime::rng::lemire_map` (widening-multiply
//!   mapping); modulo reduction is both biased and slower. The heuristic is
//!   line-granular: a `%` on the same line as a raw-word draw
//!   (`next_u64`/`next_u32`/`next_word`) is a finding.
//! - **`relaxed-ordering`** — every `Ordering::Relaxed` must be covered by
//!   an `// ORDERING:` comment explaining why relaxed suffices (what the
//!   site synchronizes with, or why it doesn't need to). PR 5/7 established
//!   the publish/consume discipline (`Release` publish, `Acquire` read) for
//!   `SnapshotCell` and the one-shot slots; an unexplained `Relaxed` is
//!   either a latent reorder bug or missing documentation — both fail.
//!
//! # Suppression
//!
//! Explicit and greppable: `// audit:allow(<rule>) — <reason>` on the
//! finding's line (trailing) or the line directly above it. Example:
//!
//! ```text
//! use rand::rngs::StdRng; // audit:allow(determinism) — seeded reference stream
//! ```
//!
//! # Coverage model
//!
//! `// SAFETY:` and `// ORDERING:` comments cover their *paragraph*: every
//! following line until the next blank line. A comment block above a
//! multi-line statement therefore covers the whole statement, and one block
//! may justify a contiguous run of sites (e.g. a struct literal loading
//! eight stats counters). A blank line ends the covered region, so an
//! unrelated site further down needs its own comment.
//!
//! # Scope
//!
//! All `.rs` files in the workspace are scanned except `crates/shims/`
//! (vendored API stand-ins with pinned streams — their internals are frozen
//! by golden tests, and rewriting the shim's modulo `gen_range` would shift
//! every `StdRng`-derived golden), `target/`, and `fixtures/` directories
//! (seeded rule violations for the audit's own test suite).

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The named contracts enforced by the audit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    UnsafeSafety,
    NanOrdering,
    Determinism,
    LemireOnly,
    RelaxedOrdering,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 5] = [
    Rule::UnsafeSafety,
    Rule::NanOrdering,
    Rule::Determinism,
    Rule::LemireOnly,
    Rule::RelaxedOrdering,
];

impl Rule {
    /// The kebab-case name used in findings and `audit:allow(..)` pragmas.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::NanOrdering => "nan-ordering",
            Rule::Determinism => "determinism",
            Rule::LemireOnly => "lemire-only",
            Rule::RelaxedOrdering => "relaxed-ordering",
        }
    }

    /// One-line statement of the contract the rule guards.
    pub fn contract(self) -> &'static str {
        match self {
            Rule::UnsafeSafety => {
                "unsafe is documented (// SAFETY:) and confined to \
                 tensor::simd, runtime::{pool,oneshot,rng}, serve::service"
            }
            Rule::NanOrdering => {
                "float ranking uses f32::total_cmp or serve::rank_cmp, \
                 never partial_cmp (NaN-total ordering, PR 5)"
            }
            Rule::Determinism => {
                "deterministic crates never read wall clocks or OS entropy \
                 (bit-identical results are a pure function of the seed)"
            }
            Rule::LemireOnly => "range reduction of RNG words uses lemire_map, never % (PR 9)",
            Rule::RelaxedOrdering => {
                "every Ordering::Relaxed carries an // ORDERING: justification"
            }
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One rule violation at a specific source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Policy tables. Paths are workspace-relative, `/`-separated.
// ---------------------------------------------------------------------------

/// `src/` files allowed to contain `unsafe` (still requiring `// SAFETY:`).
/// Test and bench targets may call the allowlisted crates' `unsafe fn`s
/// directly (cross-tier SIMD equivalence tests) — confinement applies to
/// `src/` only, but the SAFETY-comment requirement applies everywhere.
const UNSAFE_ALLOWED_SRC: [&str; 5] = [
    "crates/tensor/src/simd.rs",
    "crates/runtime/src/pool.rs",
    "crates/runtime/src/oneshot.rs",
    "crates/runtime/src/rng.rs",
    "crates/serve/src/service.rs",
];

/// Files allowed to call `partial_cmp` on floats: the total-order comparator
/// itself (it filters NaN before delegating, property-tested in PR 5).
const NAN_ORDERING_ALLOWED: [&str; 1] = ["crates/serve/src/order.rs"];

/// `src/` trees whose code must be a pure function of the seed.
const DETERMINISTIC_SRC: [&str; 6] = [
    "crates/data/src/",
    "crates/tensor/src/",
    "crates/core/src/",
    "crates/optim/src/",
    "crates/metrics/src/",
    "crates/baselines/src/",
];

/// Deterministic-crate files exempt from the determinism rule:
/// `core::io` times fsync for the atomic snapshot publish (PR 8).
const DETERMINISM_ALLOWED: [&str; 1] = ["crates/core/src/io.rs"];

/// Tokens the determinism rule bans inside deterministic `src/`.
const DETERMINISM_TOKENS: [&str; 4] = ["Instant::now", "SystemTime", "StdRng", "thread_rng"];

/// Raw-word draw tokens; `%` on the same code line is a lemire-only finding.
const RNG_WORD_TOKENS: [&str; 3] = ["next_u64", "next_u32", "next_word"];

// ---------------------------------------------------------------------------
// Line lexer: split each physical line into code text and comment text, with
// string/char literal contents removed from the code text. State (block
// comments, multi-line strings) persists across lines.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LexState {
    Code,
    /// Inside `/* .. */`, with nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus this many `#`s.
    RawStr(u32),
}

#[derive(Clone, Debug)]
struct LineInfo {
    /// Code with comments removed and literal contents blanked.
    code: String,
    /// Concatenated comment text on this line (line + block comments).
    comment: String,
    /// True when the raw line is empty/whitespace-only.
    blank: bool,
}

fn lex_lines(source: &str) -> Vec<LineInfo> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        // Line comment (incl. doc comments) — rest of line.
                        comment.extend(&chars[i..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if c == 'r'
                        && matches!(next, Some('"') | Some('#'))
                        && !prev_is_ident(&chars, i)
                    {
                        // Raw string r"…", r#"…"#, …
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('"');
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime. `'\…'` and `'x'` are
                        // literals (skip, so a quote char can't open a fake
                        // string); anything else is a lifetime.
                        if next == Some('\\') {
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                if chars[j] == '\\' {
                                    j += 1;
                                }
                                j += 1;
                            }
                            code.push_str("' '");
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                LexState::Block(depth) => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    let c = chars[i];
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' {
                        let h = hashes as usize;
                        let closed = (1..=h).all(|k| chars.get(i + k) == Some(&'#'));
                        if closed {
                            code.push('"');
                            state = LexState::Code;
                            i += 1 + h;
                        } else {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(LineInfo {
            code,
            comment,
            blank: raw.trim().is_empty(),
        });
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Find `word` in `code` at identifier boundaries; returns the byte offset.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let ok_after =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            return Some(start);
        }
        from = end;
    }
    None
}

/// `unsafe` in type position (`run: unsafe fn(..)`, transmute targets) is a
/// fn-pointer type, not an unsafe operation: `unsafe` directly followed by
/// `fn` and then `(` — declarations always have a name between `fn` and `(`.
fn is_fn_pointer_type(code: &str, unsafe_pos: usize) -> bool {
    let rest = code[unsafe_pos + "unsafe".len()..].trim_start();
    if let Some(after_fn) = rest.strip_prefix("fn") {
        return after_fn.trim_start().starts_with('(');
    }
    false
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

/// Scan one file's source. `rel_path` is the workspace-relative path and
/// selects which policy tables apply; it must use `/` separators.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let lines = lex_lines(source);
    let n = lines.len();

    // Pragmas: `audit:allow(rule)` in a comment suppresses that rule on the
    // pragma's line and the line directly below it.
    let mut allowed: Vec<Vec<Rule>> = vec![Vec::new(); n];
    for (idx, li) in lines.iter().enumerate() {
        let mut rest = li.comment.as_str();
        while let Some(pos) = rest.find("audit:allow(") {
            rest = &rest[pos + "audit:allow(".len()..];
            if let Some(close) = rest.find(')') {
                if let Some(rule) = Rule::from_name(rest[..close].trim()) {
                    allowed[idx].push(rule);
                }
                rest = &rest[close + 1..];
            } else {
                break;
            }
        }
    }
    let is_allowed = |idx: usize, rule: Rule| -> bool {
        allowed[idx].contains(&rule) || (idx > 0 && allowed[idx - 1].contains(&rule))
    };

    // Paragraph coverage for SAFETY/ORDERING annotations: a marker covers
    // every following line until the next blank line.
    let mut safety_cov = vec![false; n];
    let mut ordering_cov = vec![false; n];
    let mut s = false;
    let mut o = false;
    for (idx, li) in lines.iter().enumerate() {
        if li.blank {
            s = false;
            o = false;
        }
        if li.comment.contains("SAFETY:") || li.comment.contains("# Safety") {
            s = true;
        }
        if li.comment.contains("ORDERING:") {
            o = true;
        }
        safety_cov[idx] = s;
        ordering_cov[idx] = o;
    }

    let is_src = rel_path.contains("/src/");
    let unsafe_confined = !is_src || UNSAFE_ALLOWED_SRC.contains(&rel_path);
    let nan_exempt = NAN_ORDERING_ALLOWED.contains(&rel_path);
    let deterministic = DETERMINISTIC_SRC
        .iter()
        .any(|prefix| rel_path.starts_with(prefix))
        && !DETERMINISM_ALLOWED.contains(&rel_path);

    let mut findings = Vec::new();
    let mut push = |idx: usize, rule: Rule, message: String| {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: idx + 1,
            rule,
            message,
        });
    };

    // Determinism exempts trailing `#[cfg(test)]` modules: property tests
    // compare against StdRng reference streams by design.
    let mut in_cfg_test_tail = false;

    for idx in 0..n {
        let code = lines[idx].code.as_str();
        if code.contains("#[cfg(test)]") {
            in_cfg_test_tail = true;
        }

        // unsafe-safety
        if let Some(pos) = find_word(code, "unsafe") {
            if !is_fn_pointer_type(code, pos) && !is_allowed(idx, Rule::UnsafeSafety) {
                if !unsafe_confined {
                    push(
                        idx,
                        Rule::UnsafeSafety,
                        "`unsafe` outside the allowlisted modules \
                         (tensor::simd, runtime::{pool,oneshot,rng}, \
                         serve::service)"
                            .to_string(),
                    );
                } else if !safety_cov[idx] {
                    push(
                        idx,
                        Rule::UnsafeSafety,
                        "`unsafe` without a covering `// SAFETY:` comment".to_string(),
                    );
                }
            }
        }

        // nan-ordering
        if !nan_exempt
            && find_word(code, "partial_cmp").is_some()
            && !is_allowed(idx, Rule::NanOrdering)
        {
            push(
                idx,
                Rule::NanOrdering,
                "float comparison via `partial_cmp` — use `f32::total_cmp` \
                 or `serve::rank_cmp` (NaN-total ordering contract)"
                    .to_string(),
            );
        }

        // determinism
        if deterministic && !in_cfg_test_tail {
            for tok in DETERMINISM_TOKENS {
                if find_word(code, tok.split("::").next().unwrap()).is_some()
                    && code.contains(tok)
                    && !is_allowed(idx, Rule::Determinism)
                {
                    push(
                        idx,
                        Rule::Determinism,
                        format!(
                            "`{tok}` in a deterministic crate — results \
                             must be a pure function of the seed"
                        ),
                    );
                }
            }
        }

        // lemire-only
        if code.contains('%')
            && RNG_WORD_TOKENS.iter().any(|t| find_word(code, t).is_some())
            && !is_allowed(idx, Rule::LemireOnly)
        {
            push(
                idx,
                Rule::LemireOnly,
                "`%` range reduction on an RNG word — use \
                 `mars_runtime::rng::lemire_map` (Lemire-only contract)"
                    .to_string(),
            );
        }

        // relaxed-ordering
        if code.contains("Ordering::Relaxed")
            && !ordering_cov[idx]
            && !is_allowed(idx, Rule::RelaxedOrdering)
        {
            push(
                idx,
                Rule::RelaxedOrdering,
                "`Ordering::Relaxed` without a covering `// ORDERING:` \
                 justification"
                    .to_string(),
            );
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Collect every `.rs` file under `root`, skipping `target/`, `.git/`,
/// vendored shims, and `fixtures/` directories (seeded violations).
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                if name == "shims" && dir.file_name().is_some_and(|d| d == "crates") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan the whole workspace rooted at `root`. Findings are sorted by
/// `(file, line)` for stable output.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        findings.extend(scan_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_line_comments_and_strings() {
        let lines = lex_lines("let x = \"unsafe % next_u64\"; // unsafe\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains('%'));
        assert!(lines[0].comment.contains("unsafe"));
    }

    #[test]
    fn lexer_handles_quote_char_literal() {
        // A '"' char literal must not open a phantom string that swallows
        // the rest of the file.
        let src = "if c == '\"' { x % rng.next_u64() }\n";
        let lines = lex_lines(src);
        assert!(lines[0].code.contains("next_u64"));
        assert!(lines[0].code.contains('%'));
    }

    #[test]
    fn lexer_tracks_block_comments_across_lines() {
        let src = "/* unsafe\nstill comment */ let a = 1;\n";
        let lines = lex_lines(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[1].code.contains("let a"));
        assert!(lines[1].comment.contains("still comment"));
    }

    #[test]
    fn fn_pointer_type_is_not_an_unsafe_site() {
        let src = "struct H { run: unsafe fn(*const (), usize) }\n";
        let f = scan_source("crates/runtime/src/pool.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn paragraph_coverage_ends_at_blank_line() {
        let src = "\
// SAFETY: covered paragraph.
let a = unsafe { f() };
let b = unsafe { g() };

let c = unsafe { h() };
";
        let f = scan_source("crates/runtime/src/pool.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
        assert_eq!(f[0].rule, Rule::UnsafeSafety);
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "\
// audit:allow(nan-ordering) — reference comparison
let o = a.partial_cmp(&b);
let p = a.partial_cmp(&b);
";
        let f = scan_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn determinism_skips_cfg_test_tail() {
        let src = "\
fn run(seed: u64) -> u64 { seed }

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
}
";
        let f = scan_source("crates/data/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn determinism_only_applies_to_deterministic_src() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        assert!(!scan_source("crates/serve/src/service.rs", src)
            .iter()
            .any(|f| f.rule == Rule::Determinism));
        assert!(scan_source("crates/metrics/src/lib.rs", src)
            .iter()
            .any(|f| f.rule == Rule::Determinism));
    }
}
