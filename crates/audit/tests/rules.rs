//! Fixture-driven red/green tests for each audit rule, plus the integration
//! test that the real workspace passes its own audit clean.

use std::path::Path;

use mars_audit::{check_workspace, scan_source, Finding, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unsafe_safety_red_green() {
    // Red: naked unsafe block, even inside the module allowlist.
    let red = scan_source(
        "crates/runtime/src/pool.rs",
        &fixture("unsafe_safety_violation.rs"),
    );
    assert!(
        rules_of(&red).contains(&Rule::UnsafeSafety),
        "expected unsafe-safety finding, got {red:?}"
    );

    // Green: fully documented unsafe inside the allowlist.
    let green = scan_source(
        "crates/runtime/src/pool.rs",
        &fixture("unsafe_safety_clean.rs"),
    );
    assert!(green.is_empty(), "clean fixture flagged: {green:?}");

    // Confinement: the same documented code outside the allowlist fails.
    let misplaced = scan_source(
        "crates/metrics/src/lib.rs",
        &fixture("unsafe_safety_clean.rs"),
    );
    assert!(
        rules_of(&misplaced).contains(&Rule::UnsafeSafety),
        "expected confinement finding, got {misplaced:?}"
    );
}

#[test]
fn nan_ordering_red_green() {
    let red = scan_source(
        "crates/core/src/analysis.rs",
        &fixture("nan_ordering_violation.rs"),
    );
    assert!(
        rules_of(&red).contains(&Rule::NanOrdering),
        "expected nan-ordering finding, got {red:?}"
    );

    let green = scan_source(
        "crates/core/src/analysis.rs",
        &fixture("nan_ordering_clean.rs"),
    );
    assert!(green.is_empty(), "clean fixture flagged: {green:?}");

    // The total-order comparator itself is exempt.
    let exempt = scan_source(
        "crates/serve/src/order.rs",
        &fixture("nan_ordering_violation.rs"),
    );
    assert!(exempt.is_empty(), "order.rs should be exempt: {exempt:?}");
}

#[test]
fn determinism_red_green() {
    let red = scan_source(
        "crates/data/src/sampler.rs",
        &fixture("determinism_violation.rs"),
    );
    let red_rules = rules_of(&red);
    assert!(
        red_rules.contains(&Rule::Determinism),
        "expected determinism findings, got {red:?}"
    );
    // Both the StdRng sites and the Instant::now site are caught.
    assert!(
        red.iter().filter(|f| f.rule == Rule::Determinism).count() >= 3,
        "expected StdRng x2 + Instant::now, got {red:?}"
    );

    let green = scan_source(
        "crates/data/src/sampler.rs",
        &fixture("determinism_clean.rs"),
    );
    assert!(green.is_empty(), "clean fixture flagged: {green:?}");

    // Outside the deterministic crates the same code is fine.
    let out_of_scope = scan_source(
        "crates/bench/src/bin/fig5.rs",
        &fixture("determinism_violation.rs"),
    );
    assert!(
        !rules_of(&out_of_scope).contains(&Rule::Determinism),
        "bench is out of determinism scope: {out_of_scope:?}"
    );
}

#[test]
fn lemire_only_red_green() {
    let red = scan_source(
        "crates/data/src/sampler.rs",
        &fixture("lemire_only_violation.rs"),
    );
    assert!(
        rules_of(&red).contains(&Rule::LemireOnly),
        "expected lemire-only finding, got {red:?}"
    );

    let green = scan_source(
        "crates/data/src/sampler.rs",
        &fixture("lemire_only_clean.rs"),
    );
    assert!(green.is_empty(), "clean fixture flagged: {green:?}");
}

#[test]
fn relaxed_ordering_red_green() {
    let red = scan_source(
        "crates/serve/src/service.rs",
        &fixture("relaxed_ordering_violation.rs"),
    );
    assert!(
        rules_of(&red).contains(&Rule::RelaxedOrdering),
        "expected relaxed-ordering finding, got {red:?}"
    );

    let green = scan_source(
        "crates/serve/src/service.rs",
        &fixture("relaxed_ordering_clean.rs"),
    );
    assert!(green.is_empty(), "clean fixture flagged: {green:?}");
}

#[test]
fn pragma_suppression_is_rule_specific() {
    // A pragma for one rule must not silence another rule on the same line.
    let src = "\
let x = a.partial_cmp(&b); // audit:allow(determinism) — wrong rule
";
    let findings = scan_source("crates/core/src/x.rs", src);
    assert!(
        rules_of(&findings).contains(&Rule::NanOrdering),
        "pragma for a different rule must not suppress: {findings:?}"
    );
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let findings = scan_source(
        "crates/core/src/analysis.rs",
        &fixture("nan_ordering_violation.rs"),
    );
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/analysis.rs:"),
        "{rendered}"
    );
    assert!(rendered.contains(": nan-ordering: "), "{rendered}");
}

/// The whole point: the real workspace passes its own audit.
#[test]
fn workspace_passes_its_own_audit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = check_workspace(root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace audit found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
