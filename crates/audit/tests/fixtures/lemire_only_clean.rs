// Clean twin: Lemire widening-multiply mapping, the PR 9 contract for every
// draw path.
use mars_runtime::rng::{lemire_map, CounterRng};

pub fn pick(rng: &mut CounterRng, n: u64) -> u64 {
    lemire_map(rng.next_u64(), n)
}
