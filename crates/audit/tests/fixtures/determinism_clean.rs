// Clean twin: counter-keyed draws — batch `b` is a pure function of
// `(seed, b)`, with no clocks and no OS entropy.
use mars_runtime::rng::{seeds, CounterRng};

pub fn sample(seed: u64, batch: u64) -> u64 {
    let mut rng = CounterRng::keyed(seeds::sampling(seed), batch);
    rng.next_u64()
}
