// Seeded violation: a relaxed atomic with no justification — either a latent
// reorder bug or missing documentation, both of which must fail the audit.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
