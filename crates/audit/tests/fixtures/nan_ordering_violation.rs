// Seeded violation: NaN-unsound float sort — `partial_cmp` with an Equal
// fallback silently produces an inconsistent comparator when NaN appears
// (the exact bug PR 5 eradicated from `MultiFacetModel::recommend`).
pub fn rank(scores: &mut [f32]) {
    scores.sort_by(|a, b| {
        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
    });
}
