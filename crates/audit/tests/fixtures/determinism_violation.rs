// Seeded violation: OS entropy and wall-clock reads inside a deterministic
// crate — results would stop being a pure function of the seed.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn sample(seed: u64) -> u64 {
    let started = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let word = rng.gen::<u64>();
    word ^ started.elapsed().as_nanos() as u64
}
