// Clean twin: `f32::total_cmp` is a total order (NaN sorts deterministically
// above +inf), so the comparator never lies to the sort.
pub fn rank(scores: &mut [f32]) {
    scores.sort_by(|a, b| a.total_cmp(b));
}
