// Clean twin: every unsafe site is covered by a `# Safety` doc section or a
// `// SAFETY:` comment. Still only passes inside the unsafe allowlist.

/// Reads the first element without a bounds check.
///
/// # Safety
/// `xs` must be non-empty.
pub unsafe fn head(xs: &[u32]) -> u32 {
    // SAFETY: caller guarantees `xs` is non-empty (see `# Safety` above).
    unsafe { *xs.as_ptr() }
}

pub fn read_first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: bounds asserted above; the pointer is valid for one read.
    unsafe { *xs.as_ptr() }
}
