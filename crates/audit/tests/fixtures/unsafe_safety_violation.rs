// Seeded violation: an `unsafe` block with no covering `// SAFETY:` comment.
// The blank line above the block keeps it outside any comment paragraph.
pub fn read_first(xs: &[u32]) -> u32 {
    let p = xs.as_ptr();

    unsafe { *p }
}
