// Seeded violation: modulo range reduction on a raw RNG word — biased for
// non-power-of-two ranges and slower than the widening multiply.
use mars_runtime::rng::CounterRng;

pub fn pick(rng: &mut CounterRng, n: u64) -> u64 {
    rng.next_u64() % n
}
