// Clean twin: the `// ORDERING:` paragraph explains why relaxed suffices;
// it covers both sites below (no blank line in between).
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64, total: &AtomicU64) {
    // ORDERING: standalone stats counters — no other memory is published
    // through them and readers tolerate momentary staleness.
    counter.fetch_add(1, Ordering::Relaxed);
    total.fetch_add(1, Ordering::Relaxed);
}
