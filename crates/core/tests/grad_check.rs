//! Finite-difference verification of the hand-derived gradients.
//!
//! Strategy: [`MultiFacetModel::triplet_loss`] evaluates the full objective
//! (push + λ_pull·pull + λ_facet·facet) without updating. One training step
//! with a tiny learning rate must therefore decrease that objective by
//! approximately `lr · ‖∇‖²` — and, more stringently, the decrease must
//! match the first-order prediction within a few percent. This validates
//! the entire gradient path (per-facet similarity gradients, softmax-Θ
//! backprop, facet-separating terms, factored-mode chain rule) against the
//! loss definition itself.
//!
//! For the spherical model the parameters move on the manifold, so the test
//! compares against the observed-vs-predicted decrease along the *actual*
//! update direction rather than reconstructing tangent gradients by hand.
//!
//! The second half of the file pins the **batched engine** to this
//! reference: a `train_batch` of size 1 must reproduce `train_triplet`'s
//! update for every parameter (both geometries / parameterizations), and
//! repeating that over several sequential steps must stay pinned — the
//! batch path may not leak state between batches.

use mars_core::model::Params;
use mars_core::{BatchAccum, MarsConfig, MultiFacetModel, Scratch};
use mars_data::batch::Triplet;

const TRIPLET: Triplet = Triplet {
    user: 1,
    positive: 2,
    negative: 4,
};
const GAMMA: f32 = 0.6;

fn total(model: &MultiFacetModel, cfg: &MarsConfig) -> f64 {
    let l = model.triplet_loss(TRIPLET, GAMMA);
    l.total(cfg.lambda_pull, cfg.lambda_facet) as f64
}

/// One tiny step must decrease the objective, and the decrease must scale
/// linearly with the learning rate (first-order behaviour).
fn check_first_order(mut cfg: MarsConfig) {
    // The Θ logits have their own learning rate that does not scale with
    // the per-step `lr`; freeze it to a negligible value so the scaling
    // check isolates the facet-embedding gradients.
    cfg.theta_lr = 1e-12;
    let base = MultiFacetModel::new(cfg.clone(), 5, 6);
    let before = total(&base, &cfg);

    // Two steps with lr and lr/2: decreases must be positive and the ratio
    // close to 2 (within 25% — hinge kinks and the manifold retraction are
    // the only sources of curvature at this scale).
    let lr_a = 1e-4f32;
    let lr_b = 5e-5f32;

    let mut model_a = base.clone();
    let mut s = Scratch::new(cfg.facets, cfg.dim);
    model_a.train_triplet(TRIPLET, GAMMA, lr_a, &mut s);
    let dec_a = before - total(&model_a, &cfg);

    let mut model_b = base.clone();
    model_b.train_triplet(TRIPLET, GAMMA, lr_b, &mut s);
    let dec_b = before - total(&model_b, &cfg);

    assert!(
        dec_a > 0.0,
        "{}: objective must decrease (got {dec_a:e})",
        cfg.tag()
    );
    assert!(
        dec_b > 0.0,
        "{}: objective must decrease (got {dec_b:e})",
        cfg.tag()
    );
    let ratio = dec_a / dec_b;
    assert!(
        (ratio - 2.0).abs() < 0.5,
        "{}: decrease should scale ~linearly with lr: ratio {ratio}",
        cfg.tag()
    );
}

#[test]
fn first_order_mar_factored_euclidean() {
    let mut cfg = MarsConfig::mar(3, 5);
    cfg.parameterization = mars_core::FacetParam::Factored;
    cfg.seed = 11;
    check_first_order(cfg);
}

#[test]
fn first_order_mars_direct_spherical_calibrated() {
    let mut cfg = MarsConfig::mars(3, 5);
    cfg.seed = 11;
    check_first_order(cfg);
}

#[test]
fn first_order_mars_plain_riemannian() {
    let mut cfg = MarsConfig::mars(3, 5);
    cfg.optimizer = mars_core::OptimKind::Riemannian;
    cfg.seed = 12;
    check_first_order(cfg);
}

#[test]
fn first_order_direct_euclidean() {
    let mut cfg = MarsConfig::mar(3, 5);
    cfg.parameterization = mars_core::FacetParam::Direct;
    cfg.seed = 13;
    check_first_order(cfg);
}

#[test]
fn first_order_spherical_projected_sgd() {
    let mut cfg = MarsConfig::mars(2, 5);
    cfg.optimizer = mars_core::OptimKind::Sgd;
    cfg.seed = 14;
    check_first_order(cfg);
}

#[test]
fn first_order_without_facet_loss() {
    let mut cfg = MarsConfig::mars(3, 5);
    cfg.lambda_facet = 0.0;
    cfg.seed = 15;
    check_first_order(cfg);
}

#[test]
fn first_order_without_pull_loss() {
    let mut cfg = MarsConfig::mars(3, 5);
    cfg.lambda_pull = 0.0;
    // Seed chosen so the hinge starts *active*: with λ_pull = 0 and an
    // inactive hinge only the (weak) facet term remains, whose first-order
    // decrease at lr = 1e-4 sits below f32 resolution of the total loss.
    cfg.seed = 17;
    check_first_order(cfg);
}

#[test]
fn first_order_single_facet() {
    // K=1: no facet-separating loss, degenerate softmax — the CML-like path.
    let mut cfg = MarsConfig::cml_like(6);
    cfg.seed = 17;
    check_first_order(cfg);
}

// ---------------------------------------------------------------------------
// Batched engine ≡ per-triplet reference at batch size 1
// ---------------------------------------------------------------------------

/// Largest absolute difference across every trainable parameter.
fn max_param_diff(a: &MultiFacetModel, b: &MultiFacetModel) -> f32 {
    fn slice_diff(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len());
        x.iter()
            .zip(y)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f32, f32::max)
    }
    let mut worst = slice_diff(a.theta_logits().as_slice(), b.theta_logits().as_slice());
    match (a.params(), b.params()) {
        (
            Params::Direct {
                user_facets: ua,
                item_facets: ia,
            },
            Params::Direct {
                user_facets: ub,
                item_facets: ib,
            },
        ) => {
            worst = worst.max(slice_diff(ua.as_slice(), ub.as_slice()));
            worst = worst.max(slice_diff(ia.as_slice(), ib.as_slice()));
        }
        (
            Params::Factored {
                user_emb: ua,
                item_emb: ia,
                phi: pa,
                psi: sa,
            },
            Params::Factored {
                user_emb: ub,
                item_emb: ib,
                phi: pb,
                psi: sb,
            },
        ) => {
            worst = worst.max(slice_diff(ua.as_slice(), ub.as_slice()));
            worst = worst.max(slice_diff(ia.as_slice(), ib.as_slice()));
            for (m, n) in pa.iter().zip(pb).chain(sa.iter().zip(sb)) {
                worst = worst.max(slice_diff(m.as_slice(), n.as_slice()));
            }
        }
        _ => panic!("parameterizations diverged"),
    }
    worst
}

/// Runs the same triplet sequence through `train_triplet` and through
/// batch-size-1 `train_batch` calls; every parameter must agree within
/// grad-check tolerance after each step.
fn check_batch1_equivalence(cfg: MarsConfig) {
    let lr = 0.05f32;
    let steps = [
        (TRIPLET, GAMMA),
        (
            Triplet {
                user: 0,
                positive: 3,
                negative: 5,
            },
            0.4,
        ),
        (
            Triplet {
                user: 1,
                positive: 2,
                negative: 0,
            },
            0.7,
        ),
        (TRIPLET, GAMMA), // revisit — catches per-batch state leakage
    ];
    let mut reference = MultiFacetModel::new(cfg.clone(), 5, 6);
    let mut batched = reference.clone();
    let mut s = Scratch::new(cfg.facets, cfg.dim);
    let mut acc = BatchAccum::new(&cfg);
    for (i, &(t, gamma)) in steps.iter().enumerate() {
        reference.train_triplet(t, gamma, lr, &mut s);
        batched.train_batch(&[(t, gamma)], lr, &mut s, &mut acc);
        let diff = max_param_diff(&reference, &batched);
        assert!(
            diff <= 1e-5,
            "{}: batch-1 diverged from per-triplet at step {i}: max diff {diff:e}",
            cfg.tag()
        );
    }
}

#[test]
fn batch1_equivalence_mar_factored_euclidean() {
    let mut cfg = MarsConfig::mar(3, 5);
    cfg.parameterization = mars_core::FacetParam::Factored;
    cfg.seed = 11;
    check_batch1_equivalence(cfg);
}

#[test]
fn batch1_equivalence_mars_direct_spherical_calibrated() {
    let mut cfg = MarsConfig::mars(3, 5);
    cfg.seed = 11;
    check_batch1_equivalence(cfg);
}

#[test]
fn batch1_equivalence_mars_plain_riemannian() {
    let mut cfg = MarsConfig::mars(3, 5);
    cfg.optimizer = mars_core::OptimKind::Riemannian;
    cfg.seed = 12;
    check_batch1_equivalence(cfg);
}

#[test]
fn batch1_equivalence_direct_euclidean() {
    let mut cfg = MarsConfig::mar(3, 5);
    cfg.seed = 13;
    check_batch1_equivalence(cfg);
}

#[test]
fn batch1_equivalence_spherical_projected_sgd() {
    let mut cfg = MarsConfig::mars(2, 5);
    cfg.optimizer = mars_core::OptimKind::Sgd;
    cfg.seed = 14;
    check_batch1_equivalence(cfg);
}

/// A batched step must also satisfy the first-order decrease property on
/// the summed objective (both geometries), mirroring `check_first_order`.
#[test]
fn batched_step_decreases_summed_objective() {
    for mut cfg in [MarsConfig::mars(3, 5), {
        let mut c = MarsConfig::mar(3, 5);
        c.parameterization = mars_core::FacetParam::Factored;
        c
    }] {
        cfg.seed = 19;
        cfg.theta_lr = 1e-12;
        let batch = [
            (TRIPLET, GAMMA),
            (
                Triplet {
                    user: 2,
                    positive: 1,
                    negative: 3,
                },
                0.5,
            ),
        ];
        let mut model = MultiFacetModel::new(cfg.clone(), 5, 6);
        let total = |m: &MultiFacetModel| -> f64 {
            batch
                .iter()
                .map(|&(t, g)| {
                    m.triplet_loss(t, g)
                        .total(cfg.lambda_pull, cfg.lambda_facet) as f64
                })
                .sum()
        };
        let before = total(&model);
        let mut s = Scratch::new(cfg.facets, cfg.dim);
        let mut acc = BatchAccum::new(&cfg);
        model.train_batch(&batch, 1e-3, &mut s, &mut acc);
        let after = total(&model);
        assert!(
            after < before,
            "{}: batched step must decrease the objective ({before} → {after})",
            cfg.tag()
        );
    }
}

/// With every loss weight at zero and an inactive hinge, the gradients must
/// vanish and a step must not move the objective.
#[test]
fn inactive_hinge_produces_no_motion() {
    let mut cfg = MarsConfig::mars(2, 5);
    cfg.lambda_pull = 0.0;
    cfg.lambda_facet = 0.0;
    cfg.seed = 18;
    let mut model = MultiFacetModel::new(cfg.clone(), 5, 6);
    let mut s = Scratch::new(cfg.facets, cfg.dim);
    // Find a margin that makes the hinge inactive: use gamma = -10 so
    // gamma - s_p + s_q < 0 always (scores are within [-1, 1]).
    let before = model.triplet_loss(TRIPLET, -10.0);
    assert_eq!(before.push, 0.0);
    let theta_before = model.theta(TRIPLET.user);
    model.train_triplet(TRIPLET, -10.0, 0.1, &mut s);
    let after = model.triplet_loss(TRIPLET, -10.0);
    assert_eq!(after.push, 0.0);
    let theta_after = model.theta(TRIPLET.user);
    for (a, b) in theta_before.iter().zip(&theta_after) {
        assert!((a - b).abs() < 1e-6, "theta moved without any active loss");
    }
}
