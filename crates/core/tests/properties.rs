//! Property-based tests for the MAR / MARS model invariants.

use mars_core::{MarsConfig, MultiFacetModel, Scratch};
use mars_data::batch::Triplet;
use proptest::prelude::*;

fn triplet_strategy(users: u32, items: u32) -> impl Strategy<Value = Triplet> {
    (0..users, 0..items, 0..items).prop_map(|(user, positive, negative)| Triplet {
        user,
        positive,
        negative,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MARS: every facet embedding stays exactly on the unit sphere no
    /// matter what triplets (including degenerate positive == negative)
    /// and learning rates training throws at it.
    #[test]
    fn mars_sphere_invariant_under_random_training(
        triplets in proptest::collection::vec(triplet_strategy(6, 8), 1..60),
        lr in 0.01f32..0.5,
        seed in 0u64..50,
    ) {
        let mut cfg = MarsConfig::mars(3, 6);
        cfg.seed = seed;
        let mut model = MultiFacetModel::new(cfg, 6, 8);
        let mut s = Scratch::new(3, 6);
        for t in triplets {
            model.train_triplet(t, 0.5, lr, &mut s);
            prop_assert!(model.check_norm_invariant(2e-3));
        }
    }

    /// MAR factored: universal embeddings never leave the unit ball.
    #[test]
    fn mar_ball_invariant_under_random_training(
        triplets in proptest::collection::vec(triplet_strategy(6, 8), 1..60),
        lr in 0.01f32..0.5,
        seed in 0u64..50,
    ) {
        let mut cfg = MarsConfig::mar(2, 6);
        cfg.seed = seed;
        let mut model = MultiFacetModel::new(cfg, 6, 8);
        let mut s = Scratch::new(2, 6);
        for t in triplets {
            model.train_triplet(t, 0.5, lr, &mut s);
            prop_assert!(model.check_norm_invariant(2e-3));
        }
    }

    /// Θ_u stays a probability distribution through arbitrary training.
    #[test]
    fn theta_remains_distribution(
        triplets in proptest::collection::vec(triplet_strategy(5, 7), 1..40),
        seed in 0u64..50,
    ) {
        let mut cfg = MarsConfig::mars(4, 5);
        cfg.seed = seed;
        let mut model = MultiFacetModel::new(cfg, 5, 7);
        let mut s = Scratch::new(4, 5);
        for t in triplets {
            model.train_triplet(t, 0.5, 0.1, &mut s);
        }
        for u in 0..5 {
            let theta = model.theta(u);
            let sum: f32 = theta.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(theta.iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    /// Spherical scores are bounded by the weighted-cosine range [-1, 1].
    #[test]
    fn mars_scores_bounded(
        triplets in proptest::collection::vec(triplet_strategy(5, 7), 0..40),
        seed in 0u64..50,
    ) {
        use mars_metrics::Scorer;
        let mut cfg = MarsConfig::mars(3, 5);
        cfg.seed = seed;
        let mut model = MultiFacetModel::new(cfg, 5, 7);
        let mut s = Scratch::new(3, 5);
        for t in triplets {
            model.train_triplet(t, 0.5, 0.1, &mut s);
        }
        for u in 0..5 {
            for v in 0..7 {
                let score = model.score(u, v);
                prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&score),
                    "score {score} out of range");
            }
        }
    }

    /// Training loss is finite (never NaN/inf) for any triplet stream.
    #[test]
    fn losses_stay_finite(
        triplets in proptest::collection::vec(triplet_strategy(5, 7), 1..50),
        gamma in 0.0f32..1.0,
    ) {
        let mut model = MultiFacetModel::new(MarsConfig::mars(2, 5), 5, 7);
        let mut s = Scratch::new(2, 5);
        for t in triplets {
            let l = model.train_triplet(t, gamma, 0.1, &mut s);
            prop_assert!(l.push.is_finite() && l.pull.is_finite() && l.facet.is_finite());
            prop_assert!(l.push >= 0.0, "hinge is non-negative");
        }
    }
}
