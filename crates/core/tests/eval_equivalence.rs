//! Cross-layer acceptance test for the batched evaluation engine: on real
//! trained MAR / MARS models, the batched protocol (fused `score_block`,
//! pre-drawn negatives, optional parallel fan-out) must reproduce the
//! sequential reference protocol **bit-identically** — same HR@K, nDCG@K,
//! MRR, AUC, same case counts — at every thread count.

use mars_core::{MarsConfig, Trainer};
use mars_data::{SyntheticConfig, SyntheticDataset};
use mars_metrics::{EvalConfig, RankingEvaluator};

fn data() -> SyntheticDataset {
    SyntheticDataset::generate(
        "eval-equivalence",
        &SyntheticConfig {
            num_users: 80,
            num_items: 70,
            num_interactions: 2200,
            num_categories: 3,
            dirichlet_alpha: 0.25,
            seed: 31,
            ..Default::default()
        },
    )
}

fn check(cfg: MarsConfig) {
    let data = data();
    let model = Trainer::new(cfg.clone()).fit(&data.dataset).model;
    for threads in [1usize, 3, 5] {
        let ev = RankingEvaluator::new(EvalConfig {
            num_negatives: 50,
            cutoffs: vec![5, 10, 20],
            seed: 4242,
            threads,
        });
        let sequential = ev.evaluate_pairs_sequential(&model, &data.dataset, &data.dataset.test);
        let batched = ev.evaluate_pairs(&model, &data.dataset, &data.dataset.test);
        assert!(sequential.cases > 0, "empty evaluation proves nothing");
        assert_eq!(
            sequential,
            batched,
            "{}: batched evaluation diverged from the sequential protocol at {threads} threads",
            cfg.tag()
        );
        // Grouped evaluation rides the same engine.
        let groups = ev.evaluate_by_user_degree(&model, &data.dataset, &[10, 25]);
        let regrouped: usize = groups.iter().map(|(_, r)| r.cases).sum();
        assert_eq!(regrouped, sequential.cases);
    }
}

#[test]
fn mars_batched_eval_matches_sequential_bitwise() {
    let mut cfg = MarsConfig::mars(3, 8);
    cfg.epochs = 3;
    cfg.batch_size = 256;
    check(cfg);
}

#[test]
fn mar_factored_batched_eval_matches_sequential_bitwise() {
    let mut cfg = MarsConfig::mar(3, 8);
    cfg.parameterization = mars_core::FacetParam::Factored;
    cfg.epochs = 3;
    cfg.batch_size = 256;
    check(cfg);
}

#[test]
fn mar_direct_batched_eval_matches_sequential_bitwise() {
    let mut cfg = MarsConfig::mar(2, 8);
    cfg.epochs = 3;
    cfg.batch_size = 256;
    check(cfg);
}
