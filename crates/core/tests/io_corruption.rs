//! Exhaustive corruption matrix for the `MARSMDL2` snapshot format.
//!
//! A crash-safe snapshot format earns its keep at the *decode* boundary:
//! any torn write (truncation at an arbitrary byte — including exactly at
//! a section boundary) and any storage bit-rot (a single flipped bit
//! anywhere in the file) must surface as a typed [`SnapshotError`], never
//! as `Ok` with silently wrong weights, never as a panic, and never as an
//! untyped I/O error. This suite proves it by brute force on a model
//! small enough to enumerate:
//!
//! * **Truncation**: every strict prefix of a valid file fails to load.
//! * **Bit flips**: every single-bit flip of a valid file fails to load
//!   (CRC-32 detects all single-bit errors; the trailer and the strict
//!   EOF probe cover the length axis).
//! * **Compatibility**: a legacy `MARSMDL1` file still loads, bit-equal.
//! * **Determinism**: save → load → save reproduces the bytes exactly.

use mars_core::io::{self, SnapshotError};
use mars_core::{MarsConfig, MultiFacetModel, Scratch};
use mars_data::batch::Triplet;
use mars_metrics::Scorer;
use std::path::PathBuf;

/// A small trained model: 4 users x 6 items, MARS-direct, 2 facets, dim 3
/// — a full v2 file of a few hundred bytes, so the per-bit matrix stays
/// cheap.
fn small_model() -> (MarsConfig, MultiFacetModel) {
    let cfg = MarsConfig::mars(2, 3);
    let mut m = MultiFacetModel::new(cfg.clone(), 4, 6);
    let mut s = Scratch::new(2, 3);
    for t in 0..40u32 {
        m.train_triplet(
            Triplet {
                user: t % 4,
                positive: t % 6,
                negative: (t + 3) % 6,
            },
            0.5,
            0.05,
            &mut s,
        );
    }
    (cfg, m)
}

fn tmpfile(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mars-io-matrix-{}-{name}", std::process::id()))
}

fn model_bits(m: &MultiFacetModel) -> Vec<u32> {
    let mut out = Vec::new();
    for u in 0..4u32 {
        for i in 0..6u32 {
            out.push(m.score(u, i).to_bits());
        }
    }
    out
}

/// Loads `bytes` as a snapshot by way of a scratch file.
fn load_bytes(
    cfg: &MarsConfig,
    bytes: &[u8],
    name: &str,
) -> Result<MultiFacetModel, SnapshotError> {
    let path = tmpfile(name);
    std::fs::write(&path, bytes).unwrap();
    let r = io::load(cfg.clone(), &path);
    let _ = std::fs::remove_file(&path);
    r
}

#[test]
fn every_truncation_is_detected_and_typed() {
    let (cfg, model) = small_model();
    let path = tmpfile("trunc.mdl");
    io::save(&model, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(bytes.len() > 100, "matrix expects a non-trivial file");

    for len in 0..bytes.len() {
        match load_bytes(&cfg, &bytes[..len], "trunc-case.mdl") {
            Ok(_) => panic!(
                "truncation to {len}/{} bytes loaded successfully",
                bytes.len()
            ),
            // Which typed error depends on where the cut lands (mid-magic,
            // mid-section, exactly on a boundary, inside the trailer) —
            // but it must be a *decode* verdict, not a raw I/O error.
            Err(SnapshotError::Io(e)) => {
                panic!("truncation to {len} bytes leaked an untyped I/O error: {e}")
            }
            Err(_) => {}
        }
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let (cfg, model) = small_model();
    let path = tmpfile("flip.mdl");
    io::save(&model, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            match load_bytes(&cfg, &corrupt, "flip-case.mdl") {
                Ok(_) => panic!("bit {bit} of byte {byte} flipped without detection"),
                Err(SnapshotError::Io(e)) => {
                    panic!("flip at byte {byte} leaked an untyped I/O error: {e}")
                }
                Err(_) => {}
            }
        }
    }
}

#[test]
fn appended_garbage_is_rejected() {
    let (cfg, model) = small_model();
    let path = tmpfile("tail.mdl");
    io::save(&model, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes.push(0);
    // One spare byte past the trailer: the strict EOF probe must refuse —
    // a "snapshot" with trailing junk is not the file `save` wrote.
    assert!(
        load_bytes(&cfg, &bytes, "tail-case.mdl").is_err(),
        "trailing garbage must fail the EOF probe"
    );
}

#[test]
fn legacy_v1_snapshot_loads_bit_equal_under_the_v2_loader() {
    let (cfg, model) = small_model();
    let path = tmpfile("legacy.mdl");
    io::save_legacy(&model, &path).unwrap();
    let loaded = io::load(cfg, &path).expect("v1 must stay loadable");
    let _ = std::fs::remove_file(&path);
    assert_eq!(model_bits(&model), model_bits(&loaded));
}

#[test]
fn save_load_save_is_byte_identical() {
    let (cfg, model) = small_model();
    let a = tmpfile("ident-a.mdl");
    let b = tmpfile("ident-b.mdl");
    io::save(&model, &a).unwrap();
    let loaded = io::load(cfg, &a).unwrap();
    io::save(&loaded, &b).unwrap();
    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
    assert_eq!(
        bytes_a, bytes_b,
        "a round-tripped snapshot must re-save identically"
    );
    assert_eq!(model_bits(&model), model_bits(&loaded));
}
