//! Loss terms of the MAR / MARS objective (Eq. 5–9 / Eq. 12–16).
//!
//! Three pieces, shared by the per-triplet reference path and the batched
//! engine:
//!
//! * the **push** hinge with adaptive margin (Eq. 8/15) and the **pull**
//!   term (Eq. 9/16), folded into [`push_pull`] which also returns the
//!   upstream coefficients `∂L/∂s_p`, `∂L/∂s_q`;
//! * the **facet-separating** penalty (Eq. 6/12) in [`facet_separation`],
//!   operating on a flat `K × D` facet buffer;
//! * the bookkeeping types [`TripletLoss`] (one triplet) and [`BatchLoss`]
//!   (running sums over an epoch or mini-batch, `f64` so millions of
//!   triplets accumulate without drift).

use crate::config::Geometry;
use mars_tensor::{nonlin, ops, rows};

/// Per-triplet loss breakdown returned by the training paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct TripletLoss {
    pub push: f32,
    pub pull: f32,
    pub facet: f32,
}

impl TripletLoss {
    /// Weighted total (the quantity being minimized).
    pub fn total(&self, lambda_pull: f32, lambda_facet: f32) -> f32 {
        self.push + lambda_pull * self.pull + lambda_facet * self.facet
    }
}

/// Running loss sums over many triplets (one mini-batch, shard, or epoch).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchLoss {
    pub push: f64,
    pub pull: f64,
    pub facet: f64,
    /// Triplets contributing to the sums.
    pub count: usize,
}

impl BatchLoss {
    /// Adds one triplet's breakdown.
    pub fn add(&mut self, l: TripletLoss) {
        self.push += l.push as f64;
        self.pull += l.pull as f64;
        self.facet += l.facet as f64;
        self.count += 1;
    }

    /// Adds a facet-separation contribution that is not tied to a single
    /// triplet (the batched engine counts each entity once per batch).
    pub fn add_facet(&mut self, facet: f32) {
        self.facet += facet as f64;
    }

    /// Folds another accumulator in (deterministic shard-order merging).
    pub fn merge(&mut self, other: &BatchLoss) {
        self.push += other.push;
        self.pull += other.pull;
        self.facet += other.facet;
        self.count += other.count;
    }

    /// Weighted total over all counted triplets.
    pub fn total(&self, lambda_pull: f32, lambda_facet: f32) -> f64 {
        self.push + lambda_pull as f64 * self.pull + lambda_facet as f64 * self.facet
    }
}

/// Evaluates the hinge + pull pieces for one triplet given the combined
/// similarities `s_p = g(u, v⁺)` and `s_q = g(u, v⁻)`.
///
/// Returns `(push, pull, c_p, c_q)` where `c_p = ∂L/∂s_p` and
/// `c_q = ∂L/∂s_q` already include the pull weight `λ_pull`.
#[inline]
pub fn push_pull(gamma: f32, s_p: f32, s_q: f32, lambda_pull: f32) -> (f32, f32, f32, f32) {
    let hinge_arg = gamma - s_p + s_q;
    let active = hinge_arg > 0.0;
    let push = hinge_arg.max(0.0);
    let pull = -s_p;
    let c_p = if active { -1.0 } else { 0.0 } - lambda_pull;
    let c_q = if active { 1.0 } else { 0.0 };
    (push, pull, c_p, c_q)
}

/// Facet-separating loss over one entity's `K` facet embeddings (flat
/// `K × dim` buffer); gradients are **added** into the matching rows of
/// `grads` scaled by `lambda_facet`. Returns the (unweighted) loss value.
///
/// Euclidean (Eq. 6): `(1/α)·softplus(−α·‖f_i − f_j‖²)` per pair —
/// decreasing in the distance, so minimizing spreads the facets.
/// Spherical: `(1/α)·softplus(+α·cos(f_i, f_j))` (see the model docs'
/// interpretive note 3) — decreasing in the angle.
pub fn facet_separation(
    geometry: Geometry,
    alpha: f32,
    lambda_facet: f32,
    facets: &[f32],
    dim: usize,
    grads: &mut [f32],
) -> f32 {
    let k = rows::row_count(facets, dim);
    debug_assert_eq!(facets.len(), grads.len());
    let mut loss = 0.0;
    for i in 0..k {
        for j in (i + 1)..k {
            match geometry {
                Geometry::Euclidean => {
                    let d2 = ops::dist_sq(rows::row(facets, dim, i), rows::row(facets, dim, j));
                    loss += nonlin::softplus(-alpha * d2) / alpha;
                    // ∂/∂d² [(1/α)softplus(−αd²)] = −σ(−αd²); ∂d²/∂f_i = 2(f_i − f_j).
                    let coeff = -nonlin::sigmoid(-alpha * d2);
                    let w = lambda_facet * coeff * 2.0;
                    for idx in 0..dim {
                        let diff = facets[i * dim + idx] - facets[j * dim + idx];
                        grads[i * dim + idx] += w * diff;
                        grads[j * dim + idx] -= w * diff;
                    }
                }
                Geometry::Spherical => {
                    let c = ops::dot(rows::row(facets, dim, i), rows::row(facets, dim, j));
                    loss += nonlin::softplus(alpha * c) / alpha;
                    let coeff = nonlin::sigmoid(alpha * c);
                    // Ambient bilinear gradient of cos (see model docs note 2).
                    let w = lambda_facet * coeff;
                    for idx in 0..dim {
                        let fi = facets[i * dim + idx];
                        let fj = facets[j * dim + idx];
                        grads[i * dim + idx] += w * fj;
                        grads[j * dim + idx] += w * fi;
                    }
                }
            }
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pull_active_hinge() {
        let (push, pull, c_p, c_q) = push_pull(0.5, 0.2, 0.1, 0.1);
        assert!((push - 0.4).abs() < 1e-6);
        assert_eq!(pull, -0.2);
        assert!((c_p - (-1.1)).abs() < 1e-6);
        assert_eq!(c_q, 1.0);
    }

    #[test]
    fn push_pull_inactive_hinge() {
        let (push, _, c_p, c_q) = push_pull(-1.0, 0.9, -0.9, 0.1);
        assert_eq!(push, 0.0);
        assert!((c_p - (-0.1)).abs() < 1e-6);
        assert_eq!(c_q, 0.0);
    }

    #[test]
    fn separation_gradient_matches_finite_difference() {
        let dim = 3;
        for geometry in [Geometry::Euclidean, Geometry::Spherical] {
            let facets = vec![0.5f32, -0.2, 0.3, 0.1, 0.4, -0.6];
            let mut grads = vec![0.0; 6];
            let loss = facet_separation(geometry, 0.7, 1.0, &facets, dim, &mut grads);
            assert!(loss.is_finite());
            let h = 1e-3f32;
            for idx in 0..6 {
                let mut up = facets.clone();
                let mut dn = facets.clone();
                up[idx] += h;
                dn[idx] -= h;
                let mut sink = vec![0.0; 6];
                let lu = facet_separation(geometry, 0.7, 1.0, &up, dim, &mut sink);
                sink.fill(0.0);
                let ld = facet_separation(geometry, 0.7, 1.0, &dn, dim, &mut sink);
                let fd = (lu - ld) / (2.0 * h);
                assert!(
                    (fd - grads[idx]).abs() < 5e-3,
                    "{geometry:?} idx {idx}: fd {fd} vs analytic {}",
                    grads[idx]
                );
            }
        }
    }

    #[test]
    fn batch_loss_accumulates_and_merges() {
        let mut a = BatchLoss::default();
        a.add(TripletLoss {
            push: 1.0,
            pull: 2.0,
            facet: 3.0,
        });
        let mut b = BatchLoss::default();
        b.add(TripletLoss {
            push: 0.5,
            pull: 0.5,
            facet: 0.5,
        });
        b.add_facet(0.5);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert!((a.push - 1.5).abs() < 1e-9);
        assert!((a.facet - 4.0).abs() < 1e-9);
        assert!((a.total(1.0, 1.0) - (1.5 + 2.5 + 4.0)).abs() < 1e-9);
    }
}
