//! Facet case-study machinery (paper §V-E, Figure 7, Tables V and VI).
//!
//! Everything here is *read-only* analysis over a trained model plus the
//! ground-truth category annotations the synthetic datasets carry:
//!
//! * [`item_facet_assignment`] — which facet space "claims" each item
//!   (the facet contributing the most similarity mass over the item's
//!   interacting users);
//! * [`category_proportions`] — Table V: per facet, the distribution of
//!   ground-truth categories among the items it claims;
//! * [`user_profile`] — Table VI: a user's learned facet weights `θ_u`
//!   alongside their per-category interaction counts;
//! * [`facet_item_matrix`] + `mars-tensor`'s PCA — Figure 7's 2-D
//!   projections;
//! * [`separation_stats`] — the quantitative version of Figure 7's visual
//!   claim: intra-category vs inter-category distances per facet space.

use crate::model::MultiFacetModel;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_tensor::{ops, Matrix};

/// For each item, the facet with the largest aggregated weighted similarity
/// over the item's (training) users:
/// `k*(v) = argmax_k Σ_{u ∈ U_v} θ_u^k · g_k(u^k, v^k)`.
///
/// Items with no training interactions are assigned facet 0 (they carry no
/// signal either way). `max_users_per_item` caps the per-item work on
/// blockbuster items; 64 is ample for a stable argmax.
pub fn item_facet_assignment(
    model: &MultiFacetModel,
    data: &Dataset,
    max_users_per_item: usize,
) -> Vec<usize> {
    let k = model.config().facets;
    let d = model.config().dim;
    let mut uf = vec![0.0; d];
    let mut vf = vec![0.0; d];
    let mut mass = vec![0.0f32; k];
    let mut out = Vec::with_capacity(data.num_items());
    for v in 0..data.num_items() as ItemId {
        let users = data.train.users_of(v);
        if users.is_empty() {
            out.push(0);
            continue;
        }
        mass.fill(0.0);
        for &u in users.iter().take(max_users_per_item.max(1)) {
            let theta = model.theta(u);
            for f in 0..k {
                model.user_facet(u, f, &mut uf);
                model.item_facet(v, f, &mut vf);
                mass[f] += theta[f] * model.facet_similarity(&uf, &vf);
            }
        }
        out.push(ops::argmax(&mass));
    }
    out
}

/// One Table V row: a category's share of the items claimed by a facet.
#[derive(Clone, Debug, PartialEq)]
pub struct CategoryShare {
    pub category: u16,
    /// Proportion in `[0, 1]` of the facet's items carrying this category.
    pub proportion: f32,
}

/// Table V: for every facet, the top-`top_n` ground-truth categories among
/// the items assigned to it, with proportions.
///
/// Items with multiple categories count towards each of them (the paper's
/// Ciao items also belong to several categories); proportions are
/// normalized by total category incidences in the facet, so they sum to ≤ 1
/// over the returned prefix.
pub fn category_proportions(
    model: &MultiFacetModel,
    data: &Dataset,
    top_n: usize,
) -> Vec<Vec<CategoryShare>> {
    assert!(
        data.num_categories > 0,
        "dataset carries no category ground truth"
    );
    let assignment = item_facet_assignment(model, data, 64);
    let k = model.config().facets;
    let mut counts = vec![vec![0usize; data.num_categories]; k];
    for (v, &facet) in assignment.iter().enumerate() {
        for &c in &data.item_categories[v] {
            counts[facet][c as usize] += 1;
        }
    }
    counts
        .into_iter()
        .map(|per_cat| {
            let total: usize = per_cat.iter().sum();
            let mut shares: Vec<CategoryShare> = per_cat
                .into_iter()
                .enumerate()
                .filter(|&(_, n)| n > 0)
                .map(|(c, n)| CategoryShare {
                    category: c as u16,
                    proportion: n as f32 / total.max(1) as f32,
                })
                .collect();
            // Descending by proportion under total_cmp (stable sort keeps
            // equal-share categories in category order).
            shares.sort_by(|a, b| b.proportion.total_cmp(&a.proportion));
            shares.truncate(top_n);
            shares
        })
        .collect()
}

/// Table VI: one user's learned facet weights and what they interacted with.
#[derive(Clone, Debug)]
pub struct UserProfile {
    pub user: UserId,
    /// Softmaxed facet weights `θ_u` (sums to 1).
    pub theta: Vec<f32>,
    /// `(category, interaction count)` sorted descending by count.
    pub category_counts: Vec<(u16, usize)>,
}

/// Builds the Table VI profile of one user from the training interactions.
pub fn user_profile(model: &MultiFacetModel, data: &Dataset, user: UserId) -> UserProfile {
    assert!(
        data.num_categories > 0,
        "dataset carries no category ground truth"
    );
    let mut counts = vec![0usize; data.num_categories];
    for &v in data.train.items_of(user) {
        for &c in &data.item_categories[v as usize] {
            counts[c as usize] += 1;
        }
    }
    let mut category_counts: Vec<(u16, usize)> = counts
        .into_iter()
        .enumerate()
        .filter(|&(_, n)| n > 0)
        .map(|(c, n)| (c as u16, n))
        .collect();
    category_counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    UserProfile {
        user,
        theta: model.theta(user),
        category_counts,
    }
}

/// Stacks every item's facet-`k` embedding into an `M × D` matrix — the
/// input to PCA for Figure 7's panel `k`.
pub fn facet_item_matrix(model: &MultiFacetModel, facet: usize) -> Matrix {
    let d = model.config().dim;
    let m = model.num_items();
    let mut out = Matrix::zeros(m, d);
    let mut buf = vec![0.0; d];
    for v in 0..m {
        model.item_facet(v as ItemId, facet, &mut buf);
        out.row_mut(v).copy_from_slice(&buf);
    }
    out
}

/// Quantitative Figure 7: distances within vs across categories.
#[derive(Clone, Copy, Debug)]
pub struct SeparationStats {
    /// Mean pairwise distance between items sharing a primary category.
    pub intra: f32,
    /// Mean pairwise distance between items of different primary categories.
    pub inter: f32,
}

impl SeparationStats {
    /// `inter / intra` — higher means better-organized categories (the
    /// paper's claim for MARS over MAR over CML).
    pub fn ratio(&self) -> f32 {
        if self.intra <= f32::MIN_POSITIVE {
            return 0.0;
        }
        self.inter / self.intra
    }
}

/// Computes intra/inter category mean distances over an embedding matrix,
/// using each item's first category as its primary label. Pairs are
/// subsampled deterministically (`stride` over the upper triangle) to keep
/// this O(M²/stride).
pub fn separation_stats(
    embeddings: &Matrix,
    item_categories: &[Vec<u16>],
    stride: usize,
) -> SeparationStats {
    assert_eq!(embeddings.rows(), item_categories.len());
    let stride = stride.max(1);
    let mut intra_sum = 0.0f64;
    let mut intra_n = 0usize;
    let mut inter_sum = 0.0f64;
    let mut inter_n = 0usize;
    let m = embeddings.rows();
    let mut pair_idx = 0usize;
    for i in 0..m {
        let ci = item_categories[i].first().copied();
        for j in (i + 1)..m {
            pair_idx += 1;
            if !pair_idx.is_multiple_of(stride) {
                continue;
            }
            let cj = item_categories[j].first().copied();
            let (Some(ci), Some(cj)) = (ci, cj) else {
                continue;
            };
            let dist = ops::dist(embeddings.row(i), embeddings.row(j)) as f64;
            if ci == cj {
                intra_sum += dist;
                intra_n += 1;
            } else {
                inter_sum += dist;
                inter_n += 1;
            }
        }
    }
    SeparationStats {
        intra: (intra_sum / intra_n.max(1) as f64) as f32,
        inter: (inter_sum / inter_n.max(1) as f64) as f32,
    }
}

/// Alignment between learned facet spaces and annotation groups.
///
/// When the dataset's category labels are organized in groups (the
/// latent-metric generator exports `group·C + cluster`), this computes, for
/// every learned facet `k` and every label group `g`, the category
/// [`separation_stats`] ratio of facet `k`'s item embeddings *under group
/// `g`'s labels*. A learned facet that captured generative facet `g` shows
/// a higher ratio in column `g` than the other columns — the quantitative
/// form of the paper's "the embedding spaces do include different
/// categories of items and distribute them differently".
///
/// Returns a `K × num_groups` row-major matrix of ratios.
pub fn facet_alignment_matrix(
    model: &MultiFacetModel,
    data: &Dataset,
    num_groups: usize,
    clusters_per_group: usize,
    stride: usize,
) -> Matrix {
    assert!(num_groups > 0 && clusters_per_group > 0);
    let k = model.config().facets;
    let mut out = Matrix::zeros(k, num_groups);
    for facet in 0..k {
        let emb = facet_item_matrix(model, facet);
        for g in 0..num_groups {
            // Project each item's labels onto group g: first label in
            // [g*C, (g+1)*C).
            let lo = (g * clusters_per_group) as u16;
            let hi = ((g + 1) * clusters_per_group) as u16;
            let labels: Vec<Vec<u16>> = data
                .item_categories
                .iter()
                .map(|cats| {
                    cats.iter()
                        .find(|&&c| c >= lo && c < hi)
                        .map(|&c| vec![c])
                        .unwrap_or_default()
                })
                .collect();
            let stats = separation_stats(&emb, &labels, stride);
            out.set(facet, g, stats.ratio());
        }
    }
    out
}

/// Segmentation of items (or users, via their facet table) from the
/// learned model — the paper's future-work item "infer clusters and
/// attributes of users and items based on the learned MARS model … to
/// support downstream tasks like user/item segmentation".
///
/// Concatenates every facet embedding of each item into one
/// `M × (K·D)` feature matrix and clusters it with k-means++. Returns the
/// cluster assignment and, when the dataset carries ground-truth
/// categories, the purity of the segmentation (fraction of items whose
/// cluster's majority category matches their own primary category).
pub fn segment_items(
    model: &MultiFacetModel,
    data: &Dataset,
    clusters: usize,
    seed: u64,
) -> (Vec<usize>, Option<f32>) {
    let k = model.config().facets;
    let d = model.config().dim;
    let m = model.num_items();
    let mut features = Matrix::zeros(m, k * d);
    let mut buf = vec![0.0; d];
    for v in 0..m {
        for f in 0..k {
            model.item_facet(v as ItemId, f, &mut buf);
            features.row_mut(v)[f * d..(f + 1) * d].copy_from_slice(&buf);
        }
    }
    let result = mars_tensor::kmeans::kmeans(&features, clusters, 100, seed);

    let purity = if data.num_categories == 0 {
        None
    } else {
        // Majority category per cluster, then the match rate.
        let mut votes = vec![vec![0usize; data.num_categories]; clusters];
        for (v, &c) in result.assignment.iter().enumerate() {
            if let Some(&cat) = data.item_categories[v].first() {
                votes[c][cat as usize] += 1;
            }
        }
        let majority: Vec<usize> = votes
            .iter()
            .map(|cnt| ops::argmax(&cnt.iter().map(|&x| x as f32).collect::<Vec<_>>()))
            .collect();
        let mut hits = 0usize;
        let mut total = 0usize;
        for (v, &c) in result.assignment.iter().enumerate() {
            if let Some(&cat) = data.item_categories[v].first() {
                total += 1;
                if majority[c] == cat as usize {
                    hits += 1;
                }
            }
        }
        Some(if total == 0 {
            0.0
        } else {
            hits as f32 / total as f32
        })
    };
    (result.assignment, purity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarsConfig;
    use crate::trainer::Trainer;
    use mars_data::{SyntheticConfig, SyntheticDataset};

    fn trained() -> (MultiFacetModel, SyntheticDataset) {
        let data = SyntheticDataset::generate(
            "analysis-test",
            &SyntheticConfig {
                num_users: 50,
                num_items: 40,
                num_interactions: 1000,
                num_categories: 3,
                dirichlet_alpha: 0.15,
                seed: 33,
                ..Default::default()
            },
        );
        let mut cfg = MarsConfig::mars(3, 8);
        cfg.epochs = 3;
        cfg.batch_size = 128;
        let out = Trainer::new(cfg).fit(&data.dataset);
        (out.model, data)
    }

    #[test]
    fn assignment_covers_all_items_with_valid_facets() {
        let (model, data) = trained();
        let a = item_facet_assignment(&model, &data.dataset, 64);
        assert_eq!(a.len(), 40);
        assert!(a.iter().all(|&f| f < 3));
    }

    #[test]
    fn category_proportions_are_normalized() {
        let (model, data) = trained();
        let props = category_proportions(&model, &data.dataset, 5);
        assert_eq!(props.len(), 3);
        for facet in &props {
            let sum: f32 = facet.iter().map(|s| s.proportion).sum();
            assert!(sum <= 1.0 + 1e-5);
            // Sorted descending.
            for w in facet.windows(2) {
                assert!(w[0].proportion >= w[1].proportion);
            }
        }
    }

    #[test]
    fn user_profile_theta_is_distribution() {
        let (model, data) = trained();
        let p = user_profile(&model, &data.dataset, 0);
        let sum: f32 = p.theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        // Counts sorted descending.
        for w in p.category_counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn facet_item_matrix_shape_and_content() {
        let (model, _) = trained();
        let m = facet_item_matrix(&model, 1);
        assert_eq!(m.shape(), (40, 8));
        // MARS rows are unit.
        for r in 0..40 {
            assert!((ops::norm(m.row(r)) - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn separation_stats_detect_planted_clusters() {
        // Two hand-built clusters far apart: ratio must exceed 1.
        let mut emb = Matrix::zeros(6, 2);
        for i in 0..3 {
            emb.row_mut(i)
                .copy_from_slice(&[0.0 + i as f32 * 0.01, 0.0]);
        }
        for i in 3..6 {
            emb.row_mut(i)
                .copy_from_slice(&[5.0 + i as f32 * 0.01, 0.0]);
        }
        let cats: Vec<Vec<u16>> = (0..6).map(|i| vec![(i / 3) as u16]).collect();
        let s = separation_stats(&emb, &cats, 1);
        assert!(s.inter > s.intra);
        assert!(s.ratio() > 10.0, "ratio {}", s.ratio());
    }

    #[test]
    fn separation_stats_uniform_labels_has_no_inter() {
        let emb = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let cats: Vec<Vec<u16>> = vec![vec![0]; 4];
        let s = separation_stats(&emb, &cats, 1);
        assert_eq!(s.inter, 0.0);
        assert!(s.intra > 0.0);
    }

    #[test]
    fn alignment_matrix_shape_and_finiteness() {
        let (model, data) = trained();
        // The analysis-test dataset uses the categorical generator (one
        // label group); treat it as a single group of 3 clusters.
        let m = facet_alignment_matrix(&model, &data.dataset, 1, 3, 1);
        assert_eq!(m.shape(), (3, 1));
        for r in 0..3 {
            assert!(m.get(r, 0).is_finite());
        }
    }

    #[test]
    fn segmentation_produces_valid_clusters_and_purity() {
        let (model, data) = trained();
        let (assignment, purity) = segment_items(&model, &data.dataset, 3, 1);
        assert_eq!(assignment.len(), 40);
        assert!(assignment.iter().all(|&c| c < 3));
        let p = purity.expect("synthetic data has categories");
        assert!((0.0..=1.0).contains(&p));
        // Any segmentation beats the 1/num_categories chance floor on
        // planted data... purity with majority voting is at least 1/C by
        // construction; just require it to be sane.
        assert!(p >= 1.0 / 3.0 - 1e-6);
    }
}
