//! Flat embedding tables.
//!
//! One contiguous `Vec<f32>` per table (users × dim), sliced per row — no
//! per-row allocation, cache-friendly scans during evaluation, and the rows
//! plug straight into the `mars-tensor` kernels and `mars-optim` steppers.

use mars_tensor::{init, ops};
use rand::Rng;

/// A dense `rows × dim` table of `f32` embeddings.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// All-zero table.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            rows,
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Table initialized `U(−scale, scale)` — the CML/BPR convention.
    pub fn uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, dim: usize, scale: f32) -> Self {
        let mut t = Self::zeros(rows, dim);
        init::uniform(rng, &mut t.data, scale);
        t
    }

    /// Table with every row drawn uniformly on the unit sphere — the MARS
    /// starting manifold.
    pub fn unit_sphere<R: Rng + ?Sized>(rng: &mut R, rows: usize, dim: usize) -> Self {
        let mut t = Self::zeros(rows, dim);
        for r in 0..rows {
            init::unit_sphere(rng, t.row_mut(r));
        }
        t
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of {} rows", self.rows);
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of {} rows", self.rows);
        &mut self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Flat buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Normalizes every row to unit length (projection onto the sphere).
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            ops::normalize(self.row_mut(r));
        }
    }

    /// Clips every row into the unit ball (the MAR/CML constraint).
    pub fn clip_rows_to_unit_ball(&mut self) {
        for r in 0..self.rows {
            ops::clip_to_unit_ball(self.row_mut(r));
        }
    }

    /// Largest row norm (diagnostics / invariant checks).
    pub fn max_row_norm(&self) -> f32 {
        (0..self.rows)
            .map(|r| ops::norm(self.row(r)))
            .fold(0.0, f32::max)
    }

    /// True iff every row has unit norm within `tol`.
    pub fn all_rows_unit(&self, tol: f32) -> bool {
        (0..self.rows).all(|r| (ops::norm(self.row(r)) - 1.0).abs() <= tol)
    }
}

/// A `rows × (K·dim)` table storing `K` facet embeddings per entity
/// contiguously — facet `k` of row `r` is one slice, so per-facet reads stay
/// within a row's cache lines.
#[derive(Clone, Debug, PartialEq)]
pub struct FacetTable {
    rows: usize,
    facets: usize,
    dim: usize,
    data: Vec<f32>,
}

impl FacetTable {
    /// All-zero facet table.
    pub fn zeros(rows: usize, facets: usize, dim: usize) -> Self {
        Self {
            rows,
            facets,
            dim,
            data: vec![0.0; rows * facets * dim],
        }
    }

    /// Every facet embedding drawn uniformly on the unit sphere.
    pub fn unit_sphere<R: Rng + ?Sized>(
        rng: &mut R,
        rows: usize,
        facets: usize,
        dim: usize,
    ) -> Self {
        let mut t = Self::zeros(rows, facets, dim);
        for r in 0..rows {
            for k in 0..facets {
                init::unit_sphere(rng, t.facet_mut(r, k));
            }
        }
        t
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn facets(&self) -> usize {
        self.facets
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Facet `k` of entity `r`.
    #[inline]
    pub fn facet(&self, r: usize, k: usize) -> &[f32] {
        debug_assert!(r < self.rows && k < self.facets);
        let start = (r * self.facets + k) * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Mutable facet `k` of entity `r`.
    #[inline]
    pub fn facet_mut(&mut self, r: usize, k: usize) -> &mut [f32] {
        debug_assert!(r < self.rows && k < self.facets);
        let start = (r * self.facets + k) * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// All `K` facet embeddings of entity `r` as one contiguous
    /// `facets × dim` row block — zero-copy input for the
    /// `mars-tensor::rows` kernels (batched scoring borrows item blocks
    /// straight from the table).
    #[inline]
    pub fn entity(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        let per = self.facets * self.dim;
        &self.data[r * per..(r + 1) * per]
    }

    /// Flat buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Clips every facet embedding into the unit ball.
    pub fn clip_to_unit_ball(&mut self) {
        let per = self.dim;
        for chunk in self.data.chunks_exact_mut(per) {
            ops::clip_to_unit_ball(chunk);
        }
    }

    /// Normalizes every facet embedding to the unit sphere.
    pub fn normalize(&mut self) {
        let per = self.dim;
        for chunk in self.data.chunks_exact_mut(per) {
            ops::normalize(chunk);
        }
    }

    /// True iff every facet embedding has unit norm within `tol` — the MARS
    /// invariant asserted after training.
    pub fn all_unit(&self, tol: f32) -> bool {
        self.data
            .chunks_exact(self.dim)
            .all(|c| (ops::norm(c) - 1.0).abs() <= tol)
    }

    /// Largest facet-embedding norm.
    pub fn max_norm(&self) -> f32 {
        self.data
            .chunks_exact(self.dim)
            .map(ops::norm)
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_rows_are_disjoint() {
        let mut t = EmbeddingTable::zeros(3, 4);
        t.row_mut(1).fill(1.0);
        assert!(t.row(0).iter().all(|&v| v == 0.0));
        assert!(t.row(1).iter().all(|&v| v == 1.0));
        assert!(t.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_init_bounds() {
        let t = EmbeddingTable::uniform(&mut StdRng::seed_from_u64(1), 10, 8, 0.1);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn unit_sphere_rows_are_unit() {
        let t = EmbeddingTable::unit_sphere(&mut StdRng::seed_from_u64(2), 20, 6);
        assert!(t.all_rows_unit(1e-5));
    }

    #[test]
    fn normalize_then_clip_idempotent() {
        let mut t = EmbeddingTable::uniform(&mut StdRng::seed_from_u64(3), 5, 4, 3.0);
        t.normalize_rows();
        assert!(t.all_rows_unit(1e-5));
        let before = t.clone();
        t.clip_rows_to_unit_ball();
        for r in 0..5 {
            for (a, b) in t.row(r).iter().zip(before.row(r)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn max_row_norm_tracks_largest() {
        let mut t = EmbeddingTable::zeros(2, 2);
        t.row_mut(0).copy_from_slice(&[3.0, 4.0]);
        t.row_mut(1).copy_from_slice(&[0.1, 0.0]);
        assert!((t.max_row_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn facet_table_layout() {
        let mut t = FacetTable::zeros(2, 3, 2);
        t.facet_mut(1, 2).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(t.facet(1, 2), &[7.0, 8.0]);
        assert_eq!(t.facet(1, 1), &[0.0, 0.0]);
        assert_eq!(t.facet(0, 2), &[0.0, 0.0]);
        // Flat layout: row 1, facet 2 lives at the tail.
        assert_eq!(&t.as_slice()[10..12], &[7.0, 8.0]);
    }

    #[test]
    fn facet_unit_sphere_and_invariant() {
        let t = FacetTable::unit_sphere(&mut StdRng::seed_from_u64(4), 6, 4, 8);
        assert!(t.all_unit(1e-5));
        assert!((t.max_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn facet_clip_and_normalize() {
        let mut t = FacetTable::zeros(1, 2, 2);
        t.facet_mut(0, 0).copy_from_slice(&[3.0, 4.0]);
        t.facet_mut(0, 1).copy_from_slice(&[0.3, 0.4]);
        let mut clipped = t.clone();
        clipped.clip_to_unit_ball();
        assert!((mars_tensor::ops::norm(clipped.facet(0, 0)) - 1.0).abs() < 1e-6);
        assert_eq!(clipped.facet(0, 1), &[0.3, 0.4]);
        t.normalize();
        assert!(t.all_unit(1e-5));
    }
}
