//! # mars-core
//!
//! Reproduction of the MAR / MARS multi-facet metric-learning recommender
//! (ICDE 2021). The crate provides:
//!
//! * [`config::MarsConfig`] — one configuration struct covering MAR, MARS,
//!   the CML-equivalent `K=1` ablation, and every component toggle the
//!   paper studies;
//! * [`model::MultiFacetModel`] — the model: universal/facet embeddings,
//!   cross-facet similarity (Eq. 4 / Eq. 14), per-triplet training updates
//!   with the push (Eq. 8/15), pull (Eq. 9/16) and facet-separating
//!   (Eq. 6/12) losses;
//! * [`trainer::Trainer`] — the epoch loop wiring in adaptive margins
//!   (Eq. 7), explorative sampling (Eq. 10), dev-set tracking and the
//!   projection constraints;
//! * [`analysis`] — the facet case-study machinery behind the paper's
//!   Figure 7 and Tables V/VI;
//! * [`io`] — seed-free binary persistence of trained models.
//!
//! ## Quick start
//!
//! ```
//! use mars_core::{MarsConfig, Trainer};
//! use mars_data::{SyntheticConfig, SyntheticDataset};
//! use mars_metrics::RankingEvaluator;
//!
//! // A small planted multi-facet dataset.
//! let data = SyntheticDataset::generate(
//!     "demo",
//!     &SyntheticConfig { num_users: 80, num_items: 60, num_interactions: 1500,
//!                        ..Default::default() },
//! );
//!
//! // Train MARS with K=2 facet spaces of dimension 16.
//! let mut cfg = MarsConfig::mars(2, 16);
//! cfg.epochs = 3;
//! let outcome = Trainer::new(cfg).fit(&data.dataset);
//!
//! // Evaluate with the paper's protocol (100 negatives, HR/nDCG@{10,20}).
//! let report = RankingEvaluator::paper().evaluate(&outcome.model, &data.dataset);
//! assert!(report.hr_at(10) > 0.0);
//! ```

// Indexed loops over parallel slices are used deliberately in the gradient
// kernels: the math reads as subscripts (`u[d]`, `v[d]`, `diff[d]`), and
// zipping three or four iterators obscures which tensor each factor comes
// from. LLVM elides the bounds checks in release builds (verified in the
// Criterion benches).
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod config;
pub mod embedding;
pub mod io;
pub mod model;
pub mod trainer;

pub use config::{FacetParam, Geometry, MarsConfig, NegativeSampling, OptimKind, UserSampling};
pub use model::{MultiFacetModel, Scratch, TripletLoss};
pub use trainer::{TrainOutcome, Trainer};
