//! # mars-core
//!
//! Reproduction of the MAR / MARS multi-facet metric-learning recommender
//! (ICDE 2021), built around a batched, data-parallel training engine. The
//! crate is layered:
//!
//! * [`config::MarsConfig`] — one configuration struct covering MAR, MARS,
//!   the CML-equivalent `K=1` ablation, every component toggle the paper
//!   studies, and the execution-engine knobs ([`config::BatchMode`],
//!   `threads`);
//! * [`kernels`] — facet-similarity and ambient-gradient kernels over flat
//!   `K × D` facet buffers (plus the reusable [`kernels::Scratch`]);
//! * [`loss`] — the push (Eq. 8/15), pull (Eq. 9/16) and facet-separating
//!   (Eq. 6/12) terms with their upstream coefficients;
//! * [`model::MultiFacetModel`] — parameters (universal/factored or direct
//!   facet embeddings), cross-facet similarity (Eq. 4 / Eq. 14), scoring,
//!   and the per-triplet **reference** update path;
//! * [`engine`] — the batched path: gradients for a mini-batch accumulate
//!   against frozen parameters in an [`engine::BatchAccum`] and every
//!   touched row takes one optimizer step; numerically equivalent to the
//!   reference path at batch size 1 (`tests/grad_check.rs`);
//! * [`trainer::Trainer`] — the epoch loop wiring in adaptive margins
//!   (Eq. 7), explorative sampling (Eq. 10), dev-set tracking, the
//!   projection constraints, and — in batched mode — user-sharded
//!   data-parallel execution over a thread scope with deterministic
//!   shard-order merging;
//! * [`analysis`] — the facet case-study machinery behind the paper's
//!   Figure 7 and Tables V/VI;
//! * [`io`] — seed-free binary persistence of trained models.
//!
//! ## Quick start
//!
//! ```
//! use mars_core::{MarsConfig, Trainer};
//! use mars_data::{SyntheticConfig, SyntheticDataset};
//! use mars_metrics::RankingEvaluator;
//!
//! // A small planted multi-facet dataset.
//! let data = SyntheticDataset::generate(
//!     "demo",
//!     &SyntheticConfig { num_users: 80, num_items: 60, num_interactions: 1500,
//!                        ..Default::default() },
//! );
//!
//! // Train MARS with K=2 facet spaces of dimension 16.
//! let mut cfg = MarsConfig::mars(2, 16);
//! cfg.epochs = 3;
//! let outcome = Trainer::new(cfg).fit(&data.dataset);
//!
//! // Evaluate with the paper's protocol (100 negatives, HR/nDCG@{10,20}).
//! let report = RankingEvaluator::paper().evaluate(&outcome.model, &data.dataset);
//! assert!(report.hr_at(10) > 0.0);
//! ```

// Indexed loops over parallel slices are deliberate in the numeric code
// (the math reads as subscripts); the lint is relaxed workspace-wide in
// the root Cargo.toml `[workspace.lints]` table.
//
// This crate is part of the deterministic numeric core: no unsafe
// anywhere (the vetted unsafe surface lives in mars-tensor::simd
// and mars-runtime; see `cargo run -p mars-audit -- check`).
#![forbid(unsafe_code)]

pub mod analysis;
pub mod config;
pub mod embedding;
pub mod engine;
pub mod io;
pub mod kernels;
pub mod loss;
pub mod model;
pub mod trainer;

pub use config::{
    BatchMode, FacetParam, Geometry, MarsConfig, NegativeSampling, OptimKind, UserSampling,
};
pub use engine::BatchAccum;
pub use kernels::Scratch;
pub use loss::{BatchLoss, TripletLoss};
pub use model::MultiFacetModel;
pub use trainer::{TrainOutcome, Trainer};
