//! Facet similarity and ambient-gradient kernels.
//!
//! Pure slice math shared by the per-triplet reference path and the batched
//! engine. Facet sets live in flat `K × D` buffers (one row per facet, see
//! `mars_tensor::rows`), so one kernel call covers all `K` facets of an
//! entity:
//!
//! * [`similarities`] — per-facet `g_k` (Eq. 3 Euclidean / Eq. 13 spherical);
//! * [`similarity_gradients`] — the ambient gradients of the weighted
//!   similarity terms w.r.t. the user / positive / negative facet sets;
//! * [`Scratch`] — the reusable per-triplet work buffers (perf-book:
//!   workhorse collections; zero allocation per step).

use crate::config::Geometry;
use mars_tensor::{ops, rows, simd};

/// Facet-specific similarity `g_k` for the given geometry (Eq. 3 / Eq. 13).
#[inline]
pub fn facet_similarity(geometry: Geometry, a: &[f32], b: &[f32]) -> f32 {
    match geometry {
        Geometry::Euclidean => -ops::dist_sq(a, b),
        Geometry::Spherical => ops::cosine(a, b),
    }
}

/// All `K` per-facet similarities between two flat facet sets:
/// `out[k] = g_k(a_k, b_k)`.
pub fn similarities(geometry: Geometry, a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
    match geometry {
        Geometry::Euclidean => {
            rows::dist_sq_rows(a, b, dim, out);
            for v in out.iter_mut() {
                *v = -*v;
            }
        }
        Geometry::Spherical => {
            // Fused dots, then the same normalization/guard/clamp as
            // `ops::cosine` so the two entry points agree bitwise.
            rows::dot_rows(a, b, dim, out);
            for (r, o) in out.iter_mut().enumerate() {
                let na = ops::norm(rows::row(a, dim, r));
                let nb = ops::norm(rows::row(b, dim, r));
                *o = if na <= f32::MIN_POSITIVE || nb <= f32::MIN_POSITIVE {
                    0.0
                } else {
                    (*o / (na * nb)).clamp(-1.0, 1.0)
                };
            }
        }
    }
}

/// Ambient gradients of `Σ_k (w_p[k]·g_k(u,p) + w_q[k]·g_k(u,q))` with
/// respect to the three facet sets, **overwriting** `du`, `dp`, `dq`.
///
/// `w_p` / `w_q` hold the per-facet loss weights (`∂L/∂s · θ_u^k`).
///
/// Euclidean: `g = −‖u−v‖²` ⇒ `∂g/∂u = −2(u−v)`, `∂g/∂v = 2(u−v)`.
/// Spherical: the models hand the optimizer the *bilinear* gradient
/// (`∂(uᵀv)/∂u = v`); the tangent projection inside the Riemannian step
/// supplies the `−(uᵀv)u` part (see the model docs' interpretive note 2).
#[allow(clippy::too_many_arguments)]
pub fn similarity_gradients(
    geometry: Geometry,
    w_p: &[f32],
    w_q: &[f32],
    uf: &[f32],
    pf: &[f32],
    qf: &[f32],
    du: &mut [f32],
    dp: &mut [f32],
    dq: &mut [f32],
    dim: usize,
) {
    du.fill(0.0);
    dp.fill(0.0);
    dq.fill(0.0);
    let k = rows::row_count(uf, dim);
    debug_assert_eq!(w_p.len(), k);
    debug_assert_eq!(w_q.len(), k);
    match geometry {
        Geometry::Euclidean => {
            // One fused three-output pass per facet (the vectorized
            // `simd::euclid_grad_row` kernel; du = −dp − dq elementwise).
            for f in 0..k {
                simd::euclid_grad_row(
                    2.0 * w_p[f],
                    2.0 * w_q[f],
                    rows::row(uf, dim, f),
                    rows::row(pf, dim, f),
                    rows::row(qf, dim, f),
                    rows::row_mut(du, dim, f),
                    rows::row_mut(dp, dim, f),
                    rows::row_mut(dq, dim, f),
                );
            }
        }
        Geometry::Spherical => {
            rows::axpy_rows(w_p, pf, du, dim);
            rows::axpy_rows(w_q, qf, du, dim);
            rows::axpy_rows(w_p, uf, dp, dim);
            rows::axpy_rows(w_q, uf, dq, dim);
        }
    }
}

/// Reusable per-triplet work buffers; one per trainer shard, zero allocation
/// per step. Facet sets and their gradients are flat `K × D` rows.
pub struct Scratch {
    /// Gathered facet embeddings of the user / positive / negative (`K × D`).
    pub(crate) uf: Vec<f32>,
    pub(crate) pf: Vec<f32>,
    pub(crate) qf: Vec<f32>,
    /// Facet-embedding gradients (`K × D`).
    pub(crate) du: Vec<f32>,
    pub(crate) dp: Vec<f32>,
    pub(crate) dq: Vec<f32>,
    /// Softmaxed facet weights of the user (`K`).
    pub(crate) theta: Vec<f32>,
    /// Per-facet similarities to the positive / negative (`K`).
    pub(crate) gp: Vec<f32>,
    pub(crate) gq: Vec<f32>,
    /// Per-facet loss weights `c · θ_u^k` (`K`).
    pub(crate) w_p: Vec<f32>,
    pub(crate) w_q: Vec<f32>,
    /// Θ-gradient staging (`K`).
    pub(crate) theta_upstream: Vec<f32>,
    pub(crate) theta_grad: Vec<f32>,
    /// Generic `D`-sized temporary.
    pub(crate) tmp: Vec<f32>,
    /// Universal-embedding gradients for the factored chain rule (`D`).
    pub(crate) univ_u: Vec<f32>,
    pub(crate) univ_p: Vec<f32>,
    pub(crate) univ_q: Vec<f32>,
}

impl Scratch {
    /// Allocates buffers for `k` facets of dimension `d`.
    pub fn new(k: usize, d: usize) -> Self {
        let kd = || vec![0.0; k * d];
        let kv = || vec![0.0; k];
        let dv = || vec![0.0; d];
        Self {
            uf: kd(),
            pf: kd(),
            qf: kd(),
            du: kd(),
            dp: kd(),
            dq: kd(),
            theta: kv(),
            gp: kv(),
            gq: kv(),
            w_p: kv(),
            w_q: kv(),
            theta_upstream: kv(),
            theta_grad: kv(),
            tmp: dv(),
            univ_u: dv(),
            univ_p: dv(),
            univ_q: dv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarities_match_scalar_kernel() {
        let a = [1.0, 0.0, 0.0, 1.0]; // two rows at dim 2
        let b = [0.5, 0.5, 0.0, 2.0];
        for geometry in [Geometry::Euclidean, Geometry::Spherical] {
            let mut out = [0.0; 2];
            similarities(geometry, &a, &b, 2, &mut out);
            for r in 0..2 {
                let expect =
                    facet_similarity(geometry, &a[r * 2..(r + 1) * 2], &b[r * 2..(r + 1) * 2]);
                assert!((out[r] - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gradients_match_finite_difference_of_weighted_sum() {
        let dim = 3;
        let uf = vec![0.4f32, -0.2, 0.1, 0.3, 0.3, -0.5];
        let pf = vec![0.1f32, 0.2, -0.3, -0.2, 0.4, 0.2];
        let qf = vec![-0.4f32, 0.1, 0.5, 0.2, -0.1, 0.3];
        let w_p = [0.7f32, -0.3];
        let w_q = [0.2f32, 0.5];
        // Euclidean only: the spherical kernel intentionally returns the
        // bilinear (not full cosine) gradient — covered by the optimizer's
        // tangent-projection tests instead.
        let objective = |uf: &[f32], pf: &[f32], qf: &[f32]| -> f32 {
            let mut s = 0.0;
            for f in 0..2 {
                let u = &uf[f * dim..(f + 1) * dim];
                let p = &pf[f * dim..(f + 1) * dim];
                let q = &qf[f * dim..(f + 1) * dim];
                s += w_p[f] * -ops::dist_sq(u, p) + w_q[f] * -ops::dist_sq(u, q);
            }
            s
        };
        let mut du = vec![0.0; 6];
        let mut dp = vec![0.0; 6];
        let mut dq = vec![0.0; 6];
        similarity_gradients(
            Geometry::Euclidean,
            &w_p,
            &w_q,
            &uf,
            &pf,
            &qf,
            &mut du,
            &mut dp,
            &mut dq,
            dim,
        );
        let h = 1e-3;
        for idx in 0..6 {
            let mut up = uf.clone();
            let mut dn = uf.clone();
            up[idx] += h;
            dn[idx] -= h;
            let fd = (objective(&up, &pf, &qf) - objective(&dn, &pf, &qf)) / (2.0 * h);
            assert!(
                (fd - du[idx]).abs() < 5e-3,
                "du[{idx}]: fd {fd} vs {}",
                du[idx]
            );
            let mut up = pf.clone();
            let mut dn = pf.clone();
            up[idx] += h;
            dn[idx] -= h;
            let fd = (objective(&uf, &up, &qf) - objective(&uf, &dn, &qf)) / (2.0 * h);
            assert!(
                (fd - dp[idx]).abs() < 5e-3,
                "dp[{idx}]: fd {fd} vs {}",
                dp[idx]
            );
            let mut up = qf.clone();
            let mut dn = qf.clone();
            up[idx] += h;
            dn[idx] -= h;
            let fd = (objective(&uf, &pf, &up) - objective(&uf, &pf, &dn)) / (2.0 * h);
            assert!(
                (fd - dq[idx]).abs() < 5e-3,
                "dq[{idx}]: fd {fd} vs {}",
                dq[idx]
            );
        }
    }

    #[test]
    fn spherical_gradients_are_bilinear() {
        // ∂(Σ w·uᵀv)/∂u = w·v exactly.
        let uf = [1.0f32, 0.0];
        let pf = [0.0f32, 1.0];
        let qf = [1.0f32, 1.0];
        let mut du = [0.0; 2];
        let mut dp = [0.0; 2];
        let mut dq = [0.0; 2];
        similarity_gradients(
            Geometry::Spherical,
            &[2.0],
            &[3.0],
            &uf,
            &pf,
            &qf,
            &mut du,
            &mut dp,
            &mut dq,
            2,
        );
        assert_eq!(du, [3.0, 5.0]); // 2·p + 3·q
        assert_eq!(dp, [2.0, 0.0]); // 2·u
        assert_eq!(dq, [3.0, 0.0]); // 3·u
    }
}
