//! Binary persistence for trained models.
//!
//! A small self-describing format (magic + version + shape header + raw
//! little-endian `f32` payloads) instead of a serde dependency: the tables
//! are large flat float arrays, so the natural encoding is also the fast
//! one, and the format is trivially stable across versions of this crate.
//!
//! Layout (all integers little-endian `u64`, floats little-endian `f32`):
//!
//! ```text
//! magic   b"MARSMDL1"
//! header  num_users, num_items, facets, dim, geometry(0/1), param(0/1)
//! theta   num_users × facets floats
//! params  factored: user_emb, item_emb, phi[0..K], psi[0..K]
//!         direct:   user_facets, item_facets
//! ```
//!
//! Only the *weights* round-trip; the returned model carries the provided
//! config (which must agree with the stored shapes).

use crate::config::{FacetParam, Geometry, MarsConfig};
use crate::model::{MultiFacetModel, Params};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MARSMDL1";

/// Saves the model's weights to `path`.
pub fn save(model: &MultiFacetModel, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let cfg = model.config();
    let geometry_tag: u64 = match cfg.geometry {
        Geometry::Euclidean => 0,
        Geometry::Spherical => 1,
    };
    let param_tag: u64 = match cfg.parameterization {
        FacetParam::Factored => 0,
        FacetParam::Direct => 1,
    };
    for v in [
        model.num_users() as u64,
        model.num_items() as u64,
        cfg.facets as u64,
        cfg.dim as u64,
        geometry_tag,
        param_tag,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    write_f32s(&mut w, model.theta_logits().as_slice())?;
    match model.params() {
        Params::Factored {
            user_emb,
            item_emb,
            phi,
            psi,
        } => {
            write_f32s(&mut w, user_emb.as_slice())?;
            write_f32s(&mut w, item_emb.as_slice())?;
            for m in phi.iter().chain(psi.iter()) {
                write_f32s(&mut w, m.as_slice())?;
            }
        }
        Params::Direct {
            user_facets,
            item_facets,
        } => {
            write_f32s(&mut w, user_facets.as_slice())?;
            write_f32s(&mut w, item_facets.as_slice())?;
        }
    }
    w.flush()
}

/// Loads a model saved by [`save`], attaching the given config.
///
/// Fails with `InvalidData` if the magic, shapes, geometry or
/// parameterization disagree with the config.
pub fn load(cfg: MarsConfig, path: &Path) -> io::Result<MultiFacetModel> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a MARS model file"));
    }
    let mut header = [0u64; 6];
    for h in header.iter_mut() {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        *h = u64::from_le_bytes(buf);
    }
    let [num_users, num_items, facets, dim, geometry_tag, param_tag] = header;
    let geometry = match geometry_tag {
        0 => Geometry::Euclidean,
        1 => Geometry::Spherical,
        _ => return Err(bad("unknown geometry tag")),
    };
    let param = match param_tag {
        0 => FacetParam::Factored,
        1 => FacetParam::Direct,
        _ => return Err(bad("unknown parameterization tag")),
    };
    if cfg.facets as u64 != facets
        || cfg.dim as u64 != dim
        || cfg.geometry != geometry
        || cfg.parameterization != param
    {
        return Err(bad("config does not match stored model"));
    }

    let mut model = MultiFacetModel::new(cfg, num_users as usize, num_items as usize);
    read_f32s(&mut r, model.theta_logits_mut().as_mut_slice())?;
    match model.params_mut() {
        Params::Factored {
            user_emb,
            item_emb,
            phi,
            psi,
        } => {
            read_f32s(&mut r, user_emb.as_mut_slice())?;
            read_f32s(&mut r, item_emb.as_mut_slice())?;
            for m in phi.iter_mut().chain(psi.iter_mut()) {
                read_f32s(&mut r, m.as_mut_slice())?;
            }
        }
        Params::Direct {
            user_facets,
            item_facets,
        } => {
            read_f32s(&mut r, user_facets.as_mut_slice())?;
            read_f32s(&mut r, item_facets.as_mut_slice())?;
        }
    }
    // Trailing data means shape confusion somewhere — refuse.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(model),
        _ => Err(bad("trailing bytes after model payload")),
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_f32s<W: Write>(w: &mut W, xs: &[f32]) -> io::Result<()> {
    // Chunked conversion avoids a full-copy buffer for big tables.
    let mut buf = [0u8; 4096];
    for chunk in xs.chunks(1024) {
        let bytes = &mut buf[..chunk.len() * 4];
        for (i, &x) in chunk.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
        w.write_all(bytes)?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R, out: &mut [f32]) -> io::Result<()> {
    let mut buf = [0u8; 4096];
    for chunk in out.chunks_mut(1024) {
        let bytes = &mut buf[..chunk.len() * 4];
        r.read_exact(bytes)?;
        for (i, x) in chunk.iter_mut().enumerate() {
            *x = f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarsConfig;
    use crate::model::Scratch;
    use mars_data::batch::Triplet;
    use mars_metrics::Scorer;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mars-io-test-{name}-{}", std::process::id()));
        p
    }

    fn train_a_bit(mut m: MultiFacetModel) -> MultiFacetModel {
        let mut s = Scratch::new(m.config().facets, m.config().dim);
        for i in 0..50u32 {
            let t = Triplet {
                user: i % 4,
                positive: i % 6,
                negative: (i + 2) % 6,
            };
            m.train_triplet(t, 0.5, 0.05, &mut s);
        }
        m
    }

    #[test]
    fn roundtrip_mars_direct() {
        let cfg = MarsConfig::mars(2, 4);
        let m = train_a_bit(MultiFacetModel::new(cfg.clone(), 4, 6));
        let path = tmpfile("direct");
        save(&m, &path).unwrap();
        let loaded = load(cfg, &path).unwrap();
        for u in 0..4 {
            for v in 0..6 {
                assert_eq!(m.score(u, v), loaded.score(u, v));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_mar_factored() {
        let cfg = MarsConfig::mar(3, 4);
        let m = train_a_bit(MultiFacetModel::new(cfg.clone(), 4, 6));
        let path = tmpfile("factored");
        save(&m, &path).unwrap();
        let loaded = load(cfg, &path).unwrap();
        for u in 0..4 {
            for v in 0..6 {
                assert_eq!(m.score(u, v), loaded.score(u, v));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_config_is_rejected() {
        let cfg = MarsConfig::mars(2, 4);
        let m = MultiFacetModel::new(cfg.clone(), 4, 6);
        let path = tmpfile("mismatch");
        save(&m, &path).unwrap();
        // Different K.
        let err = load(MarsConfig::mars(3, 4), &path);
        assert!(err.is_err());
        // Different geometry.
        let err = load(MarsConfig::mar(2, 4), &path);
        assert!(err.is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"NOTAMARS________________").unwrap();
        assert!(load(MarsConfig::mars(2, 4), &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
