//! Binary persistence for trained models — crash-safe and end-to-end
//! integrity-checked.
//!
//! A small self-describing format (magic + shape header + raw
//! little-endian `f32` payloads) instead of a serde dependency: the tables
//! are large flat float arrays, so the natural encoding is also the fast
//! one, and the format is trivially stable across versions of this crate.
//!
//! Two format versions exist:
//!
//! ```text
//! MARSMDL2 (written by `save`)
//!   magic    b"MARSMDL2"                                       8 bytes
//!   header   num_users, num_items, facets, dim,
//!            geometry(0/1), param(0/1)          — six u64 LE  48 bytes
//!   hcrc     CRC-32 (IEEE) of the 48 header bytes, u32 LE      4 bytes
//!   sections one per weight table, in the fixed order below:
//!              payload   n × f32 LE
//!              scrc      CRC-32 of the payload bytes, u32 LE
//!   trailer  total file length in bytes (incl. itself), u64 LE 8 bytes
//!
//! MARSMDL1 (legacy; `load` still reads it, `save_legacy` still writes it)
//!   magic + header + raw payloads, no checksums, no trailer
//! ```
//!
//! Section order: `theta`, then — factored — `user_emb`, `item_emb`,
//! `phi[0..K]`, `psi[0..K]`, or — direct — `user_facets`, `item_facets`.
//!
//! ## Integrity contract
//!
//! A v2 file is rejected with a typed [`SnapshotError`] — never loaded
//! into a live model — if it is truncated at **any** byte (including
//! exactly at a section boundary), if any single bit of the header, a
//! payload, a CRC, or the trailer is flipped, or if its shapes disagree
//! with the [`MarsConfig`] the caller provides. The corruption-matrix test
//! (`crates/core/tests/io_corruption.rs`) proves all three exhaustively.
//!
//! ## Crash-safe publish
//!
//! [`save`] never writes `path` in place: it writes a sibling temp file,
//! fsyncs it, and atomically `rename`s it over `path` (then fsyncs the
//! directory so the rename itself is durable). A reader — e.g. a serving
//! process hot-swapping snapshots — therefore sees either the complete old
//! file or the complete new one, never a torn intermediate; a crash
//! mid-save leaves at worst a stale `.tmp` sibling.
//!
//! Only the *weights* round-trip; the returned model carries the provided
//! config (which must agree with the stored shapes).

use crate::config::{FacetParam, Geometry, MarsConfig};
use crate::model::{MultiFacetModel, Params};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 8] = b"MARSMDL1";
const MAGIC_V2: &[u8; 8] = b"MARSMDL2";

/// Which part of a snapshot file an error was detected in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// Magic + shape header (+ its CRC in v2).
    Header,
    /// The facet-weight logits table.
    Theta,
    /// Factored parameterization: the universal user embedding.
    UserEmb,
    /// Factored parameterization: the universal item embedding.
    ItemEmb,
    /// Factored parameterization: facet projection `phi[k]`.
    Phi(usize),
    /// Factored parameterization: facet projection `psi[k]`.
    Psi(usize),
    /// Direct parameterization: the user facet table.
    UserFacets,
    /// Direct parameterization: the item facet table.
    ItemFacets,
    /// The total-length trailer.
    Trailer,
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Section::Header => write!(f, "header"),
            Section::Theta => write!(f, "theta"),
            Section::UserEmb => write!(f, "user_emb"),
            Section::ItemEmb => write!(f, "item_emb"),
            Section::Phi(k) => write!(f, "phi[{k}]"),
            Section::Psi(k) => write!(f, "psi[{k}]"),
            Section::UserFacets => write!(f, "user_facets"),
            Section::ItemFacets => write!(f, "item_facets"),
            Section::Trailer => write!(f, "trailer"),
        }
    }
}

/// Why a snapshot could not be loaded (or saved). Every variant is
/// distinguishable so a serving supervisor can react differently to a
/// half-written file (retry after the writer finishes), a bit-flipped one
/// (alert, keep serving the old snapshot), and an operator error (wrong
/// config for the file).
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error (open/create/rename/fsync).
    Io(io::Error),
    /// The file does not start with a known MARS model magic.
    BadMagic,
    /// The file ends mid-`section` — a torn or still-in-progress write.
    Truncated(Section),
    /// `section`'s checksum (or tag validity) check failed — bit rot, a
    /// corrupted transfer, or an overwritten region.
    Corrupt(Section),
    /// The stored shape/geometry/parameterization disagrees with the
    /// [`MarsConfig`] passed to [`load`].
    ShapeMismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value in the file.
        stored: u64,
        /// The value the provided config implies.
        expected: u64,
    },
    /// The total-length trailer disagrees with the bytes actually present
    /// (extension, concatenation, or trailing garbage).
    TrailerMismatch {
        /// Length the trailer claims.
        stored: u64,
        /// Length implied by the sections actually read.
        actual: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a MARS model file"),
            SnapshotError::Truncated(s) => write!(f, "snapshot truncated in {s}"),
            SnapshotError::Corrupt(s) => write!(f, "snapshot corrupt in {s}"),
            SnapshotError::ShapeMismatch {
                field,
                stored,
                expected,
            } => write!(
                f,
                "snapshot {field} mismatch: file has {stored}, config expects {expected}"
            ),
            SnapshotError::TrailerMismatch { stored, actual } => write!(
                f,
                "snapshot trailer claims {stored} bytes but {actual} are present"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven, dep-free.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC-32 (IEEE). `Crc32::new().update(b).finish()` matches
/// zlib's `crc32(0, b)` — pinned by a golden-value test below.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The finalized checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Saves the model's weights to `path` in the checksummed `MARSMDL2`
/// format, via an atomic temp-file + fsync + rename publish (see the
/// module docs — a crash at any instant leaves `path` either absent, the
/// complete old file, or the complete new file).
pub fn save(model: &MultiFacetModel, path: &Path) -> Result<(), SnapshotError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);

    let result = (|| -> Result<(), SnapshotError> {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        let total = write_v2(model, &mut w)?;
        w.flush()?;
        let file = w
            .into_inner()
            .map_err(|e| SnapshotError::Io(e.into_error()))?;
        // fsync the data before the rename can make it visible — otherwise
        // a crash could publish a name pointing at unwritten blocks.
        file.sync_all()?;
        drop(file);
        debug_assert_eq!(total, fs::metadata(&tmp)?.len());
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is best-effort
        // on platforms where directories cannot be opened (non-unix).
        if let Some(dir) = dir {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        } else if let Ok(d) = File::open(".") {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the temp name is pid-qualified so a stale
        // sibling can never be confused for a published snapshot.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Writes the v2 byte stream and returns the total length written.
fn write_v2<W: Write>(model: &MultiFacetModel, w: &mut W) -> Result<u64, SnapshotError> {
    let header = header_words(model);
    let mut header_bytes = [0u8; 48];
    for (i, v) in header.iter().enumerate() {
        header_bytes[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
    let mut hcrc = Crc32::new();
    hcrc.update(&header_bytes);

    w.write_all(MAGIC_V2)?;
    w.write_all(&header_bytes)?;
    w.write_all(&hcrc.finish().to_le_bytes())?;
    let mut total: u64 = 8 + 48 + 4;

    for (_, xs) in section_tables(model) {
        let crc = write_f32s_crc(w, xs)?;
        w.write_all(&crc.to_le_bytes())?;
        total += xs.len() as u64 * 4 + 4;
    }

    total += 8; // the trailer itself counts
    w.write_all(&total.to_le_bytes())?;
    Ok(total)
}

/// Saves in the legacy un-checksummed `MARSMDL1` format (direct write, no
/// atomic publish). Kept for interop with pre-v2 readers and for the
/// v1-compat tests; new code should use [`save`].
pub fn save_legacy(model: &MultiFacetModel, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC_V1)?;
    for v in header_words(model) {
        w.write_all(&v.to_le_bytes())?;
    }
    for (_, xs) in section_tables(model) {
        write_f32s_crc(&mut w, xs)?;
    }
    w.flush()
}

/// The six header words shared by both format versions.
fn header_words(model: &MultiFacetModel) -> [u64; 6] {
    let cfg = model.config();
    let geometry_tag: u64 = match cfg.geometry {
        Geometry::Euclidean => 0,
        Geometry::Spherical => 1,
    };
    let param_tag: u64 = match cfg.parameterization {
        FacetParam::Factored => 0,
        FacetParam::Direct => 1,
    };
    [
        model.num_users() as u64,
        model.num_items() as u64,
        cfg.facets as u64,
        cfg.dim as u64,
        geometry_tag,
        param_tag,
    ]
}

/// The weight tables in serialization order, with their section labels.
fn section_tables(model: &MultiFacetModel) -> Vec<(Section, &[f32])> {
    let mut out: Vec<(Section, &[f32])> = vec![(Section::Theta, model.theta_logits().as_slice())];
    match model.params() {
        Params::Factored {
            user_emb,
            item_emb,
            phi,
            psi,
        } => {
            out.push((Section::UserEmb, user_emb.as_slice()));
            out.push((Section::ItemEmb, item_emb.as_slice()));
            for (k, m) in phi.iter().enumerate() {
                out.push((Section::Phi(k), m.as_slice()));
            }
            for (k, m) in psi.iter().enumerate() {
                out.push((Section::Psi(k), m.as_slice()));
            }
        }
        Params::Direct {
            user_facets,
            item_facets,
        } => {
            out.push((Section::UserFacets, user_facets.as_slice()));
            out.push((Section::ItemFacets, item_facets.as_slice()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// Loads a model saved by [`save`] (v2) or [`save_legacy`] (v1), attaching
/// the given config.
///
/// The header is validated against `cfg` — shapes, geometry, and
/// parameterization must agree ([`SnapshotError::ShapeMismatch`]
/// otherwise) — and, for v2 files, every section's CRC and the total
/// length are verified before any model is constructed: a torn, truncated
/// or bit-flipped file is **never** turned into a live snapshot.
pub fn load(cfg: MarsConfig, path: &Path) -> Result<MultiFacetModel, SnapshotError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    read_exact_in(&mut r, &mut magic, Section::Header)?;
    match &magic {
        m if m == MAGIC_V2 => load_v2(cfg, &mut r),
        m if m == MAGIC_V1 => load_v1(cfg, &mut r),
        _ => Err(SnapshotError::BadMagic),
    }
}

fn load_v2<R: Read>(cfg: MarsConfig, r: &mut R) -> Result<MultiFacetModel, SnapshotError> {
    let mut header_bytes = [0u8; 48];
    read_exact_in(r, &mut header_bytes, Section::Header)?;
    let mut crc_bytes = [0u8; 4];
    read_exact_in(r, &mut crc_bytes, Section::Header)?;
    let mut hcrc = Crc32::new();
    hcrc.update(&header_bytes);
    if hcrc.finish() != u32::from_le_bytes(crc_bytes) {
        return Err(SnapshotError::Corrupt(Section::Header));
    }
    let mut header = [0u64; 6];
    for (i, h) in header.iter_mut().enumerate() {
        *h = u64::from_le_bytes(header_bytes[i * 8..i * 8 + 8].try_into().unwrap());
    }
    let mut model = validate_and_alloc(cfg, header)?;

    let mut total: u64 = 8 + 48 + 4;
    for_each_section_mut(&mut model, |section, xs| {
        let crc = read_f32s_crc(r, xs, section)?;
        let mut stored = [0u8; 4];
        read_exact_in(r, &mut stored, section)?;
        if crc != u32::from_le_bytes(stored) {
            return Err(SnapshotError::Corrupt(section));
        }
        total += xs.len() as u64 * 4 + 4;
        Ok(())
    })?;
    total += 8;

    let mut trailer = [0u8; 8];
    read_exact_in(r, &mut trailer, Section::Trailer)?;
    let stored_total = u64::from_le_bytes(trailer);
    if stored_total != total {
        return Err(SnapshotError::TrailerMismatch {
            stored: stored_total,
            actual: total,
        });
    }
    expect_eof(r)?;
    Ok(model)
}

fn load_v1<R: Read>(cfg: MarsConfig, r: &mut R) -> Result<MultiFacetModel, SnapshotError> {
    let mut header = [0u64; 6];
    for h in header.iter_mut() {
        let mut buf = [0u8; 8];
        read_exact_in(r, &mut buf, Section::Header)?;
        *h = u64::from_le_bytes(buf);
    }
    let mut model = validate_and_alloc(cfg, header)?;
    for_each_section_mut(&mut model, |section, xs| {
        read_f32s_crc(r, xs, section)?;
        Ok(())
    })?;
    expect_eof(r)?;
    Ok(model)
}

/// Validates the six header words against `cfg` and allocates the model
/// they describe.
fn validate_and_alloc(cfg: MarsConfig, header: [u64; 6]) -> Result<MultiFacetModel, SnapshotError> {
    let [num_users, num_items, facets, dim, geometry_tag, param_tag] = header;
    let geometry = match geometry_tag {
        0 => Geometry::Euclidean,
        1 => Geometry::Spherical,
        _ => return Err(SnapshotError::Corrupt(Section::Header)),
    };
    let param = match param_tag {
        0 => FacetParam::Factored,
        1 => FacetParam::Direct,
        _ => return Err(SnapshotError::Corrupt(Section::Header)),
    };
    let expect_geometry: u64 = match cfg.geometry {
        Geometry::Euclidean => 0,
        Geometry::Spherical => 1,
    };
    let expect_param: u64 = match cfg.parameterization {
        FacetParam::Factored => 0,
        FacetParam::Direct => 1,
    };
    if cfg.facets as u64 != facets {
        return Err(SnapshotError::ShapeMismatch {
            field: "facets",
            stored: facets,
            expected: cfg.facets as u64,
        });
    }
    if cfg.dim as u64 != dim {
        return Err(SnapshotError::ShapeMismatch {
            field: "dim",
            stored: dim,
            expected: cfg.dim as u64,
        });
    }
    if cfg.geometry != geometry {
        return Err(SnapshotError::ShapeMismatch {
            field: "geometry",
            stored: geometry_tag,
            expected: expect_geometry,
        });
    }
    if cfg.parameterization != param {
        return Err(SnapshotError::ShapeMismatch {
            field: "parameterization",
            stored: param_tag,
            expected: expect_param,
        });
    }
    // Table sizes scale with users × facets (×dim); refuse absurd counts
    // before allocating — a corrupt header must not become an OOM.
    const MAX_ROWS: u64 = 1 << 40;
    if num_users == 0 || num_items == 0 || num_users > MAX_ROWS || num_items > MAX_ROWS {
        return Err(SnapshotError::Corrupt(Section::Header));
    }
    Ok(MultiFacetModel::new(
        cfg,
        num_users as usize,
        num_items as usize,
    ))
}

/// The mutable twin of [`section_tables`]: visits each weight table in
/// serialization order. A visitor (rather than a returned vec of `&mut`)
/// keeps the `theta`/`params` borrows sequential.
fn for_each_section_mut(
    model: &mut MultiFacetModel,
    mut f: impl FnMut(Section, &mut [f32]) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    f(Section::Theta, model.theta_logits_mut().as_mut_slice())?;
    match model.params_mut() {
        Params::Factored {
            user_emb,
            item_emb,
            phi,
            psi,
        } => {
            f(Section::UserEmb, user_emb.as_mut_slice())?;
            f(Section::ItemEmb, item_emb.as_mut_slice())?;
            for (k, m) in phi.iter_mut().enumerate() {
                f(Section::Phi(k), m.as_mut_slice())?;
            }
            for (k, m) in psi.iter_mut().enumerate() {
                f(Section::Psi(k), m.as_mut_slice())?;
            }
        }
        Params::Direct {
            user_facets,
            item_facets,
        } => {
            f(Section::UserFacets, user_facets.as_mut_slice())?;
            f(Section::ItemFacets, item_facets.as_mut_slice())?;
        }
    }
    Ok(())
}

/// `read_exact` that types EOF as [`SnapshotError::Truncated`] in the
/// given section.
fn read_exact_in<R: Read>(r: &mut R, buf: &mut [u8], at: Section) -> Result<(), SnapshotError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated(at)
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// The file must end exactly here; anything further is corruption.
fn expect_eof<R: Read>(r: &mut R) -> Result<(), SnapshotError> {
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(SnapshotError::Corrupt(Section::Trailer)),
    }
}

/// Writes `xs` as little-endian f32 bytes and returns their CRC-32.
/// Chunked conversion avoids a full-copy buffer for big tables.
fn write_f32s_crc<W: Write>(w: &mut W, xs: &[f32]) -> io::Result<u32> {
    let mut crc = Crc32::new();
    let mut buf = [0u8; 4096];
    for chunk in xs.chunks(1024) {
        let bytes = &mut buf[..chunk.len() * 4];
        for (i, &x) in chunk.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
        crc.update(bytes);
        w.write_all(bytes)?;
    }
    Ok(crc.finish())
}

/// Reads `out.len()` little-endian f32s, returning their CRC-32; EOF is
/// typed as truncation in `at`.
fn read_f32s_crc<R: Read>(r: &mut R, out: &mut [f32], at: Section) -> Result<u32, SnapshotError> {
    let mut crc = Crc32::new();
    let mut buf = [0u8; 4096];
    for chunk in out.chunks_mut(1024) {
        let bytes = &mut buf[..chunk.len() * 4];
        read_exact_in(r, bytes, at)?;
        crc.update(bytes);
        for (i, x) in chunk.iter_mut().enumerate() {
            *x = f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
    }
    Ok(crc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarsConfig;
    use crate::model::Scratch;
    use mars_data::batch::Triplet;
    use mars_metrics::Scorer;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mars-io-test-{name}-{}", std::process::id()));
        p
    }

    fn train_a_bit(mut m: MultiFacetModel) -> MultiFacetModel {
        let mut s = Scratch::new(m.config().facets, m.config().dim);
        for i in 0..50u32 {
            let t = Triplet {
                user: i % 4,
                positive: i % 6,
                negative: (i + 2) % 6,
            };
            m.train_triplet(t, 0.5, 0.05, &mut s);
        }
        m
    }

    /// The IEEE CRC-32 check value: crc32(b"123456789") = 0xCBF43926.
    #[test]
    fn crc32_golden_value() {
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        // Split updates fold identically.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        let mut c = Crc32::new();
        c.update(b"");
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn roundtrip_mars_direct() {
        let cfg = MarsConfig::mars(2, 4);
        let m = train_a_bit(MultiFacetModel::new(cfg.clone(), 4, 6));
        let path = tmpfile("direct");
        save(&m, &path).unwrap();
        let loaded = load(cfg, &path).unwrap();
        for u in 0..4 {
            for v in 0..6 {
                assert_eq!(m.score(u, v), loaded.score(u, v));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_mar_factored() {
        let cfg = MarsConfig::mar(3, 4);
        let m = train_a_bit(MultiFacetModel::new(cfg.clone(), 4, 6));
        let path = tmpfile("factored");
        save(&m, &path).unwrap();
        let loaded = load(cfg, &path).unwrap();
        for u in 0..4 {
            for v in 0..6 {
                assert_eq!(m.score(u, v), loaded.score(u, v));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_deterministic_and_atomic_over_existing_file() {
        let cfg = MarsConfig::mars(2, 4);
        let m = train_a_bit(MultiFacetModel::new(cfg.clone(), 4, 6));
        let path = tmpfile("atomic");
        save(&m, &path).unwrap();
        let first = std::fs::read(&path).unwrap();
        // Overwriting publish: same bytes, no stale temp sibling left.
        save(&m, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), first);
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !(name.starts_with(&stem) && name.contains(".tmp.")),
                "stale temp file left behind: {name}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_config_is_rejected_with_typed_mismatch() {
        let cfg = MarsConfig::mars(2, 4);
        let m = MultiFacetModel::new(cfg.clone(), 4, 6);
        let path = tmpfile("mismatch");
        save(&m, &path).unwrap();
        // Different K.
        match load(MarsConfig::mars(3, 4), &path) {
            Err(SnapshotError::ShapeMismatch {
                field: "facets", ..
            }) => {}
            other => panic!("expected facets mismatch, got {other:?}"),
        }
        // Different geometry (mar = Euclidean + factored; mismatch order:
        // geometry is checked after facets/dim, so match dims).
        match load(MarsConfig::mar(2, 4), &path) {
            Err(SnapshotError::ShapeMismatch { .. }) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"NOTAMARS________________").unwrap();
        assert!(matches!(
            load(MarsConfig::mars(2, 4), &path),
            Err(SnapshotError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let cfg = MarsConfig::mar(2, 4);
        let m = train_a_bit(MultiFacetModel::new(cfg.clone(), 4, 6));
        let path = tmpfile("legacy");
        save_legacy(&m, &path).unwrap();
        let loaded = load(cfg, &path).unwrap();
        for u in 0..4 {
            for v in 0..6 {
                assert_eq!(m.score(u, v), loaded.score(u, v));
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
