//! Training loop for MAR / MARS.
//!
//! Wires the data-layer pieces (adaptive margins, explorative sampling,
//! triplet sampling) into parameter updates, tracks losses and optional
//! dev-set metrics per epoch, and enforces the factored-mode projection
//! constraint at the cadence the config requests.
//!
//! Two execution engines, selected by [`MarsConfig::batch_mode`]:
//!
//! * [`BatchMode::PerTriplet`] — the seed's reference path: one immediate
//!   optimizer step per row per triplet
//!   ([`MultiFacetModel::train_triplet`]).
//! * [`BatchMode::Batched`] — the default: triplets stream into mini-batches
//!   of [`MarsConfig::batch_size`]; gradients accumulate against frozen
//!   parameters and each touched row takes one step per batch
//!   ([`MultiFacetModel::train_batch`]). With [`MarsConfig::threads`] > 1
//!   each batch is sharded **by user** across a persistent
//!   [`mars_runtime::WorkerPool`] living for the whole `fit()` (no per-batch
//!   spawn/join), the per-shard accumulators are merged in shard order, and
//!   the merged batch is applied once — so runs are reproducible for a
//!   fixed seed, batch size and thread count (see the determinism contract
//!   in the `mars-runtime` module docs).
//!
//! Triplet *sampling* is identical in both modes — and, since PR 4, a pure
//! function of `(seed, batch index)`: the trainer consumes the
//! counter-keyed [`TripletBatcher`] through a prefetching
//! [`TripletStream`] (batch `b + 1` is drawn on a background thread while
//! batch `b` trains; see the determinism contract in `mars-data::batch`).
//! Switching engines changes update scheduling, never the data order.

use crate::config::{BatchMode, MarsConfig, NegativeSampling, UserSampling};
use crate::engine::BatchAccum;
use crate::kernels::Scratch;
use crate::loss::BatchLoss;
use crate::model::MultiFacetModel;

use mars_data::batch::{FillMode, Triplet, TripletBatcher, TripletStream};
use mars_data::dataset::Dataset;
use mars_data::margin::compute_margins;
use mars_data::sampler::{
    NegativeSampler, PopularityNegativeSampler, UniformNegativeSampler, UserSampler,
};
use mars_metrics::{EvalConfig, RankingEvaluator};
use mars_optim::LrSchedule;
use mars_runtime::rng::seeds;
use mars_runtime::WorkerPool;

/// Per-epoch training diagnostics.
#[derive(Clone, Debug)]
pub struct EpochStats {
    pub epoch: usize,
    /// Mean weighted triplet loss over the epoch.
    pub mean_loss: f32,
    /// Mean push / pull / facet components (unweighted). In batched mode
    /// the facet term is counted once per unique entity per batch rather
    /// than once per triplet occurrence.
    pub mean_push: f32,
    pub mean_pull: f32,
    pub mean_facet: f32,
    /// Dev HR@10 if dev evaluation was enabled.
    pub dev_hr10: Option<f32>,
}

/// The result of [`Trainer::fit`].
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained model.
    pub model: MultiFacetModel,
    /// Diagnostics per epoch.
    pub history: Vec<EpochStats>,
}

/// Trains a [`MultiFacetModel`] on a [`Dataset`].
pub struct Trainer {
    cfg: MarsConfig,
    schedule: LrSchedule,
    /// Evaluate on the dev split every N epochs (0 = never).
    dev_eval_every: usize,
}

/// Either negative sampler behind one static dispatch (cold per triplet;
/// a small enum keeps it allocation-free).
enum Neg {
    Uniform(UniformNegativeSampler),
    Popularity(PopularityNegativeSampler),
}

impl NegativeSampler for Neg {
    fn sample_negative<R: rand::Rng + ?Sized>(
        &self,
        x: &mars_data::Interactions,
        u: mars_data::UserId,
        rng: &mut R,
    ) -> Option<mars_data::ItemId> {
        match self {
            Neg::Uniform(s) => s.sample_negative(x, u, rng),
            Neg::Popularity(s) => s.sample_negative(x, u, rng),
        }
    }
}

impl Trainer {
    /// Trainer with the paper's constant learning rate and no dev tracking.
    pub fn new(cfg: MarsConfig) -> Self {
        Self {
            cfg,
            schedule: LrSchedule::Constant,
            dev_eval_every: 0,
        }
    }

    /// Enables dev-set HR@10 tracking every `every` epochs.
    pub fn with_dev_tracking(mut self, every: usize) -> Self {
        self.dev_eval_every = every;
        self
    }

    /// Overrides the learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Trains a fresh model on `data.train` and returns it with history.
    pub fn fit(&self, data: &Dataset) -> TrainOutcome {
        let model = MultiFacetModel::new(self.cfg.clone(), data.num_users(), data.num_items());
        self.fit_from(model, data)
    }

    /// Continues training an existing model (warm start / fine-tuning).
    ///
    /// # Panics
    /// If the model's catalogue sizes do not match the dataset.
    pub fn fit_from(&self, mut model: MultiFacetModel, data: &Dataset) -> TrainOutcome {
        assert_eq!(model.num_users(), data.num_users(), "user count mismatch");
        assert_eq!(model.num_items(), data.num_items(), "item count mismatch");
        let cfg = &self.cfg;
        let x = &data.train;
        if x.num_interactions() == 0 {
            return TrainOutcome {
                model,
                history: Vec::new(),
            };
        }

        // Route the batcher's counter-stream fills through the vectorized
        // splitmix64 kernel (bit-identical to the scalar fallback — a
        // throughput knob, not a stream change).
        mars_tensor::simd::install_rng_kernel();

        let margins = compute_margins(x, cfg.margin, cfg.min_margin);
        let user_sampler = match cfg.user_sampling {
            UserSampling::Uniform => UserSampler::uniform(x),
            UserSampling::Explorative => UserSampler::explorative(x, cfg.beta_explore),
        };
        let neg = match cfg.negative_sampling {
            NegativeSampling::Uniform => Neg::Uniform(UniformNegativeSampler),
            NegativeSampling::Popularity => {
                Neg::Popularity(PopularityNegativeSampler::new(x, 0.75))
            }
        };

        let dev_eval = RankingEvaluator::new(EvalConfig {
            num_negatives: 100,
            cutoffs: vec![10],
            seed: 777,
            // Dev eval runs between epochs while the trainer's own pool is
            // idle, but the splits are small — keep it serial rather than
            // spinning a second pool per epoch.
            threads: 1,
        });

        // Worker state is only needed by the batched engine; the per-triplet
        // reference path must not pay for per-thread accumulators.
        let mut shards = match cfg.batch_mode {
            BatchMode::Batched => Some(Shards::new(cfg, mars_optim::resolve_threads(cfg.threads))),
            BatchMode::PerTriplet => None,
        };
        let mut scratch = Scratch::new(cfg.facets, cfg.dim);
        let mut clip = ClipCadence {
            every: cfg.spectral_clip_every,
            since: 0,
        };

        // One epoch visits approximately as many positives as there are
        // interactions; each positive (= batcher slot) is contrasted against
        // `negatives_per_positive` sampled negatives (the stochastic form of
        // Eq. 5/8's double sum), so a batch carries up to
        // `slots × negatives_per_positive ≈ batch_size` triplets.
        let k = cfg.negatives_per_positive.max(1);
        let slots = (cfg.batch_size.max(1) / k).max(1);
        let batcher =
            TripletBatcher::with_negatives(user_sampler, neg, slots, k, seeds::sampling(cfg.seed));
        let batches_per_epoch = batcher.batches_per_epoch(x);
        let mut buf: Vec<(Triplet, f32)> = Vec::with_capacity(slots * k);
        let mut history = Vec::with_capacity(cfg.epochs);

        std::thread::scope(|scope| {
            let mode = if cfg.prefetch {
                FillMode::Prefetch
            } else {
                FillMode::Serial
            };
            let mut stream = TripletStream::spawn(scope, x, batcher, mode);
            for epoch in 0..cfg.epochs {
                let lr = self.schedule.lr(cfg.lr, epoch, cfg.epochs);
                let mut sums = BatchLoss::default();

                for _ in 0..batches_per_epoch {
                    let batch = stream.next_batch();
                    match cfg.batch_mode {
                        BatchMode::PerTriplet => {
                            for &t in batch.triplets() {
                                let gamma = margins[t.user as usize];
                                let l = model.train_triplet(t, gamma, lr, &mut scratch);
                                sums.add(l);
                                clip.tick(1, &mut model);
                            }
                        }
                        BatchMode::Batched => {
                            if batch.is_empty() {
                                continue;
                            }
                            buf.clear();
                            buf.extend(
                                batch
                                    .triplets()
                                    .iter()
                                    .map(|&t| (t, margins[t.user as usize])),
                            );
                            let shards = shards.as_mut().expect("batched mode has shards");
                            run_batch(&mut model, &buf, lr, &mut scratch, shards, &mut sums);
                            clip.tick(buf.len(), &mut model);
                        }
                    }
                }
                model.enforce_projection_constraint();

                let n = sums.count.max(1) as f64;
                let dev_hr10 = if self.dev_eval_every > 0
                    && (epoch + 1) % self.dev_eval_every == 0
                    && !data.dev.is_empty()
                {
                    Some(dev_eval.evaluate_dev(&model, data).hr_at(10))
                } else {
                    None
                };
                history.push(EpochStats {
                    epoch,
                    mean_loss: (sums.total(cfg.lambda_pull, cfg.lambda_facet) / n) as f32,
                    mean_push: (sums.push / n) as f32,
                    mean_pull: (sums.pull / n) as f32,
                    mean_facet: (sums.facet / n) as f32,
                    dev_hr10,
                });
            }
        });

        debug_assert!(
            model.check_norm_invariant(1e-3),
            "norm invariant violated after training"
        );
        TrainOutcome { model, history }
    }
}

/// Spectral-clip cadence bookkeeping (factored mode; no-op for direct).
struct ClipCadence {
    every: usize,
    since: usize,
}

impl ClipCadence {
    fn tick(&mut self, steps: usize, model: &mut MultiFacetModel) {
        if self.every == 0 {
            return;
        }
        self.since += steps;
        if self.since >= self.every {
            model.enforce_projection_constraint();
            self.since = 0;
        }
    }
}

/// One worker's state for the data-parallel batch path: its triplet slice
/// (refilled per batch) plus scratch and accumulator (reused across
/// batches).
struct Shard {
    buf: Vec<(Triplet, f32)>,
    scratch: Scratch,
    acc: BatchAccum,
}

/// Per-shard worker state + the persistent pool for the data-parallel batch
/// path. Created once per `fit()`; every mini-batch reuses the same worker
/// threads (`mars-runtime` replaces PR 1's per-batch `thread::scope`).
struct Shards {
    pool: WorkerPool,
    shards: Vec<Shard>,
    /// Merge target.
    merged: BatchAccum,
}

impl Shards {
    fn new(cfg: &MarsConfig, threads: usize) -> Self {
        let pool = WorkerPool::new(threads);
        Self {
            shards: (0..pool.workers())
                .map(|_| Shard {
                    buf: Vec::new(),
                    scratch: Scratch::new(cfg.facets, cfg.dim),
                    acc: BatchAccum::new(cfg),
                })
                .collect(),
            pool,
            merged: BatchAccum::new(cfg),
        }
    }
}

/// Executes one mini-batch: single-threaded fast path, or shard-by-user →
/// scatter over the persistent pool → ordered merge → single apply.
fn run_batch(
    model: &mut MultiFacetModel,
    batch: &[(Triplet, f32)],
    lr: f32,
    scratch: &mut Scratch,
    shards: &mut Shards,
    sums: &mut BatchLoss,
) {
    let n = shards.shards.len();
    if n <= 1 {
        let sh = &mut shards.shards[0];
        let bl = model.train_batch(batch, lr, &mut sh.scratch, &mut sh.acc);
        sums.merge(&bl);
        return;
    }

    // Value-based sharding (user id, not worker availability) keeps runs
    // reproducible; see the mars-runtime determinism contract.
    mars_runtime::shard_items(
        batch,
        shards.shards.iter_mut().map(|s| &mut s.buf),
        |(t, _)| t.user as usize,
    );

    let frozen: &MultiFacetModel = model;
    let losses = shards.pool.scatter(&mut shards.shards, |_, sh| {
        sh.acc.begin_batch();
        frozen.accumulate_batch(&sh.buf, &mut sh.scratch, &mut sh.acc)
    });

    // Deterministic merge: fixed shard order.
    shards.merged.begin_batch();
    for (sh, loss) in shards.shards.iter().zip(&losses) {
        shards.merged.merge_from(&sh.acc);
        sums.merge(loss);
    }
    let facet = model.finish_batch(&mut shards.merged, lr, scratch);
    sums.facet += facet;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarsConfig;
    use mars_data::{SyntheticConfig, SyntheticDataset};
    use mars_metrics::Scorer;

    fn small_data() -> SyntheticDataset {
        SyntheticDataset::generate(
            "trainer-test",
            &SyntheticConfig {
                num_users: 60,
                num_items: 50,
                num_interactions: 1500,
                num_categories: 3,
                dirichlet_alpha: 0.2,
                seed: 21,
                ..Default::default()
            },
        )
    }

    fn quick_cfg(mut cfg: MarsConfig) -> MarsConfig {
        cfg.epochs = 4;
        cfg.batch_size = 128;
        cfg
    }

    #[test]
    fn loss_decreases_over_epochs_mar() {
        let data = small_data();
        let out = Trainer::new(quick_cfg(MarsConfig::mar(2, 8))).fit(&data.dataset);
        assert_eq!(out.history.len(), 4);
        let first = out.history.first().unwrap().mean_loss;
        let last = out.history.last().unwrap().mean_loss;
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn loss_decreases_over_epochs_mars() {
        let data = small_data();
        let out = Trainer::new(quick_cfg(MarsConfig::mars(2, 8))).fit(&data.dataset);
        let first = out.history.first().unwrap().mean_loss;
        let last = out.history.last().unwrap().mean_loss;
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn per_triplet_reference_mode_still_trains() {
        let data = small_data();
        let mut cfg = quick_cfg(MarsConfig::mars(2, 8));
        cfg.batch_mode = BatchMode::PerTriplet;
        let out = Trainer::new(cfg).fit(&data.dataset);
        let first = out.history.first().unwrap().mean_loss;
        let last = out.history.last().unwrap().mean_loss;
        assert!(last < first, "loss did not decrease: {first} → {last}");
        assert!(out.model.check_norm_invariant(1e-3));
    }

    #[test]
    fn trained_model_beats_untrained_on_dev() {
        let data = small_data();
        let cfg = quick_cfg(MarsConfig::mars(2, 8));
        let untrained = MultiFacetModel::new(cfg.clone(), 60, 50);
        let ev = RankingEvaluator::paper();
        let before = ev.evaluate(&untrained, &data.dataset).hr_at(10);
        let out = Trainer::new(cfg).fit(&data.dataset);
        let after = ev.evaluate(&out.model, &data.dataset).hr_at(10);
        assert!(
            after > before,
            "training should improve HR@10: {before} → {after}"
        );
    }

    #[test]
    fn mars_invariant_holds_after_full_training() {
        let data = small_data();
        let out = Trainer::new(quick_cfg(MarsConfig::mars(3, 8))).fit(&data.dataset);
        assert!(out.model.check_norm_invariant(1e-3));
    }

    #[test]
    fn dev_tracking_records_metrics() {
        let data = small_data();
        let out = Trainer::new(quick_cfg(MarsConfig::mars(2, 8)))
            .with_dev_tracking(2)
            .fit(&data.dataset);
        assert!(out.history[0].dev_hr10.is_none());
        assert!(out.history[1].dev_hr10.is_some());
        assert!(out.history[3].dev_hr10.is_some());
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data();
        let cfg = quick_cfg(MarsConfig::mars(2, 8));
        let a = Trainer::new(cfg.clone()).fit(&data.dataset);
        let b = Trainer::new(cfg).fit(&data.dataset);
        // Compare a few scores.
        for (u, v) in [(0u32, 0u32), (5, 10), (20, 30)] {
            assert_eq!(a.model.score(u, v), b.model.score(u, v));
        }
        assert_eq!(
            a.history.last().unwrap().mean_loss,
            b.history.last().unwrap().mean_loss
        );
    }

    #[test]
    fn sharded_training_is_deterministic_per_thread_count() {
        let data = small_data();
        let mut cfg = quick_cfg(MarsConfig::mars(2, 8));
        cfg.epochs = 2;
        cfg.threads = 4;
        let a = Trainer::new(cfg.clone()).fit(&data.dataset);
        let b = Trainer::new(cfg).fit(&data.dataset);
        for (u, v) in [(0u32, 0u32), (7, 11), (30, 42)] {
            assert_eq!(a.model.score(u, v), b.model.score(u, v));
        }
        assert_eq!(
            a.history.last().unwrap().mean_loss,
            b.history.last().unwrap().mean_loss
        );
        assert!(a.model.check_norm_invariant(1e-3));
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let data = mars_data::Dataset::leave_one_out("empty", 5, 5, &vec![vec![]; 5], vec![], 0);
        let out = Trainer::new(quick_cfg(MarsConfig::mars(2, 4))).fit(&data);
        assert!(out.history.is_empty());
    }

    #[test]
    fn warm_start_continues_training() {
        let data = small_data();
        let cfg = quick_cfg(MarsConfig::mars(2, 8));
        let first = Trainer::new(cfg.clone()).fit(&data.dataset);
        let resumed = Trainer::new(cfg).fit_from(first.model, &data.dataset);
        assert_eq!(resumed.history.len(), 4);
        assert!(resumed.model.check_norm_invariant(1e-3));
    }
}
