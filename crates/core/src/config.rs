//! Model and training configuration.
//!
//! One [`MarsConfig`] drives both frameworks of the paper:
//!
//! * [`MarsConfig::mar`] — MAR: Euclidean facet spaces, factored
//!   parameterization (universal embeddings × shared projections, Eq. 1–4),
//!   SGD with the unit-ball constraint of Eq. 11.
//! * [`MarsConfig::mars`] — MARS: spherical facet spaces, direct facet
//!   parameterization (the optimization variables of Eq. 19 are the facet
//!   embeddings themselves), calibrated Riemannian SGD (Eq. 21).
//!
//! Every ablation the harness runs — fixed vs adaptive margins, uniform vs
//! explorative sampling, RSGD vs calibrated RSGD, λ sweeps, K sweeps — is a
//! field flip on this struct.

use mars_data::margin::MarginMode;
pub use mars_optim::BatchMode;

/// Similarity geometry of the facet spaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Geometry {
    /// `g_k(u,v) = −‖u−v‖²` with `‖·‖ ≤ 1` ball constraints (MAR, Eq. 3).
    Euclidean,
    /// `g_k(u,v) = cos(u,v)` with strict `‖·‖ = 1` sphere constraints
    /// (MARS, Eq. 13).
    Spherical,
}

/// How facet embeddings are parameterized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FacetParam {
    /// Universal embedding per entity + K shared projection matrices
    /// (Eq. 1–2). Parameters: `u, v, Φ, Ψ, Θ`.
    Factored,
    /// K free facet embeddings per entity (the set `Ω` of Eq. 19), with the
    /// factored form used only at initialization. Parameters:
    /// `u^k, v^k, Θ`. Required by the Riemannian optimizers, whose manifold
    /// is the facet embedding itself.
    Direct,
}

/// Which optimizer updates the facet embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimKind {
    /// Plain SGD (+ geometry constraint projection).
    Sgd,
    /// Riemannian SGD, Eq. 20 (spherical + direct only).
    Riemannian,
    /// Calibrated Riemannian SGD, Eq. 21 (spherical + direct only).
    CalibratedRiemannian,
}

/// How the trainer picks users for triplets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UserSampling {
    /// Uniform over users with training interactions.
    Uniform,
    /// Explorative sampling, Eq. 10: `Pr(u) ∝ freq(u)^β`.
    Explorative,
}

/// How negatives are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeSampling {
    /// Uniform over the item universe (paper default).
    Uniform,
    /// Popularity-smoothed `deg^β` (ablation option).
    Popularity,
}

/// Full configuration of a multi-facet model + its training run.
#[derive(Clone, Debug)]
pub struct MarsConfig {
    /// Number of facet spaces K (paper tunes in \[1, 6\], rule of thumb 3–4).
    pub facets: usize,
    /// Per-facet embedding dimension D.
    pub dim: usize,
    pub geometry: Geometry,
    pub parameterization: FacetParam,
    pub optimizer: OptimKind,
    /// Margin rule for the push loss (paper: adaptive, Eq. 7).
    pub margin: MarginMode,
    /// Floor applied to adaptive margins (see `mars-data::margin`).
    pub min_margin: f32,
    /// Weight λ_pull of the absolute pull loss (Eq. 9/16).
    pub lambda_pull: f32,
    /// Weight λ_facet of the facet-separating loss (Eq. 6/12).
    pub lambda_facet: f32,
    /// Scale α inside the facet-separating loss (paper default 0.1).
    pub alpha: f32,
    /// Smoothing β of explorative sampling (paper default 0.8).
    pub beta_explore: f32,
    pub user_sampling: UserSampling,
    pub negative_sampling: NegativeSampling,
    /// Base learning rate.
    pub lr: f32,
    /// Learning rate for the Θ logits (usually = `lr`).
    pub theta_lr: f32,
    /// Training epochs (one epoch ≈ one pass over the interactions).
    pub epochs: usize,
    /// Triplets per mini-batch (paper: 1000). In [`BatchMode::Batched`] this
    /// is the gradient-accumulation window; in [`BatchMode::PerTriplet`] it
    /// is ignored (updates are immediate).
    pub batch_size: usize,
    /// Update scheduling: the batched engine (default) or the seed's
    /// per-triplet reference path.
    pub batch_mode: BatchMode,
    /// Worker threads for the batched engine: each mini-batch is sharded by
    /// user across this many threads and the shard gradients are merged in
    /// shard order. `0` = use all available cores. Runs are deterministic
    /// for a fixed seed **and** thread count.
    pub threads: usize,
    /// Negatives sampled per positive pair. Eq. 5/8 double-sums over the
    /// negative set; sampling several negatives per positive is the
    /// standard stochastic realization (and matches the update budget of
    /// the pointwise baselines).
    pub negatives_per_positive: usize,
    /// Draw batch `b + 1` on a background thread while batch `b` trains.
    /// The triplet stream is identical either way — batches are pure
    /// functions of `(seed, index)` (see `mars-data::batch`) — so this is a
    /// pure throughput knob.
    pub prefetch: bool,
    /// How many steps between spectral re-clipping of the projection
    /// matrices in factored mode (0 = every epoch end only).
    pub spectral_clip_every: usize,
    /// RNG seed for init + sampling.
    pub seed: u64,
}

impl MarsConfig {
    /// MAR defaults (Euclidean, direct facet parameterization, SGD,
    /// adaptive margins, explorative sampling) for `facets` spaces of
    /// dimension `dim`.
    ///
    /// Direct parameterization is the default for MAR as well as MARS: the
    /// paper's constraint set Ω (Eq. 19) is the facet embeddings, and our
    /// controlled comparison (see `tune` in `mars-bench` and DESIGN.md)
    /// shows the shared-projection factored variant trains markedly worse —
    /// every triplet's rank-1 projection update perturbs *all* entities'
    /// facet embeddings at once. The factored form of Eq. 1–2 is used at
    /// initialization, and remains available as
    /// [`FacetParam::Factored`] for the ablation harness.
    pub fn mar(facets: usize, dim: usize) -> Self {
        Self {
            facets,
            dim,
            geometry: Geometry::Euclidean,
            parameterization: FacetParam::Direct,
            optimizer: OptimKind::Sgd,
            margin: MarginMode::DistinctTwoHop,
            min_margin: 0.05,
            lambda_pull: 0.1,
            lambda_facet: 0.01,
            alpha: 0.1,
            beta_explore: 0.8,
            user_sampling: UserSampling::Explorative,
            negative_sampling: NegativeSampling::Uniform,
            lr: 0.05,
            theta_lr: 0.05,
            epochs: 30,
            batch_size: 1000,
            batch_mode: BatchMode::Batched,
            threads: 1,
            negatives_per_positive: 4,
            prefetch: true,
            spectral_clip_every: 512,
            seed: 42,
        }
    }

    /// MARS defaults (spherical, direct, calibrated RSGD) on top of the MAR
    /// defaults. Learning rates are the grid-searched optimum of
    /// `mars-bench`'s `tune` binary under the multi-negative training
    /// regime, matching the paper's per-dataset lr tuning protocol (§V-A4).
    pub fn mars(facets: usize, dim: usize) -> Self {
        Self {
            geometry: Geometry::Spherical,
            parameterization: FacetParam::Direct,
            optimizer: OptimKind::CalibratedRiemannian,
            lr: 0.05,
            theta_lr: 0.05,
            ..Self::mar(facets, dim)
        }
    }

    /// Single-space Euclidean metric learning — the CML-equivalent used as
    /// the K=1 row of the paper's Table IV.
    pub fn cml_like(dim: usize) -> Self {
        Self {
            lambda_pull: 0.0,
            lambda_facet: 0.0,
            margin: MarginMode::Fixed(0.5),
            user_sampling: UserSampling::Uniform,
            ..Self::mar(1, dim)
        }
    }

    /// Validates internal consistency; returns a human-readable complaint.
    ///
    /// The Riemannian optimizers walk on the sphere of a facet embedding,
    /// so they require `Spherical` geometry and the `Direct`
    /// parameterization (there is no manifold for "universal embedding whose
    /// projections are unit" — see DESIGN.md's interpretive notes).
    pub fn validate(&self) -> Result<(), String> {
        if self.facets == 0 {
            return Err("facets must be ≥ 1".into());
        }
        if self.dim == 0 {
            return Err("dim must be ≥ 1".into());
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(format!("invalid lr {}", self.lr));
        }
        if !(self.theta_lr > 0.0 && self.theta_lr.is_finite()) {
            return Err(format!("invalid theta_lr {}", self.theta_lr));
        }
        if self.lambda_pull < 0.0 || self.lambda_facet < 0.0 {
            return Err("loss weights must be non-negative".into());
        }
        if self.alpha <= 0.0 {
            return Err("alpha must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be ≥ 1".into());
        }
        if self.negatives_per_positive == 0 {
            return Err("negatives_per_positive must be ≥ 1".into());
        }
        match (self.optimizer, self.geometry, self.parameterization) {
            (OptimKind::Riemannian | OptimKind::CalibratedRiemannian, g, p)
                if g != Geometry::Spherical || p != FacetParam::Direct =>
            {
                Err(
                    "Riemannian optimizers require Spherical geometry and Direct \
                     parameterization"
                        .into(),
                )
            }
            _ => Ok(()),
        }
    }

    /// Short human-readable tag for harness tables (e.g. `MAR(K=4,D=32)`).
    pub fn tag(&self) -> String {
        let name = match (self.geometry, self.facets) {
            (Geometry::Spherical, _) => "MARS",
            (Geometry::Euclidean, 1) => "MAR-1",
            (Geometry::Euclidean, _) => "MAR",
        };
        format!("{}(K={},D={})", name, self.facets, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(MarsConfig::mar(4, 32).validate().is_ok());
        assert!(MarsConfig::mars(4, 32).validate().is_ok());
        assert!(MarsConfig::cml_like(64).validate().is_ok());
    }

    #[test]
    fn mars_uses_spherical_calibrated() {
        let c = MarsConfig::mars(3, 16);
        assert_eq!(c.geometry, Geometry::Spherical);
        assert_eq!(c.parameterization, FacetParam::Direct);
        assert_eq!(c.optimizer, OptimKind::CalibratedRiemannian);
    }

    #[test]
    fn riemannian_requires_spherical_direct() {
        let mut c = MarsConfig::mar(2, 8);
        c.optimizer = OptimKind::CalibratedRiemannian;
        assert!(c.validate().is_err());
        c.geometry = Geometry::Spherical;
        c.parameterization = FacetParam::Factored;
        assert!(c.validate().is_err());
        c.parameterization = FacetParam::Direct;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_values() {
        let mut c = MarsConfig::mar(2, 8);
        c.facets = 0;
        assert!(c.validate().is_err());
        let mut c = MarsConfig::mar(2, 8);
        c.dim = 0;
        assert!(c.validate().is_err());
        let mut c = MarsConfig::mar(2, 8);
        c.lr = 0.0;
        assert!(c.validate().is_err());
        let mut c = MarsConfig::mar(2, 8);
        c.lambda_pull = -0.1;
        assert!(c.validate().is_err());
        let mut c = MarsConfig::mar(2, 8);
        c.alpha = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tags_are_informative() {
        assert_eq!(MarsConfig::mars(4, 256).tag(), "MARS(K=4,D=256)");
        assert_eq!(MarsConfig::mar(3, 32).tag(), "MAR(K=3,D=32)");
        assert_eq!(MarsConfig::cml_like(64).tag(), "MAR-1(K=1,D=64)");
    }
}
