//! The multi-facet recommender model (MAR and MARS).
//!
//! One struct covers both frameworks of the paper; the configuration picks
//! the geometry, parameterization and optimizer:
//!
//! * **MAR** (Eq. 1–11): universal embeddings `u, v ∈ R^D` + shared
//!   projections `Φ, Ψ` produce facet embeddings `u^k = φ_kᵀu`; similarity
//!   is negative squared Euclidean distance per facet, combined by per-user
//!   softmax weights `Θ_u`; SGD with the unit-ball constraint.
//! * **MARS** (Eq. 12–21): the optimization variables are the facet
//!   embeddings themselves (`Ω` of Eq. 19), constrained to the unit sphere;
//!   similarity is cosine; training uses (calibrated) Riemannian SGD. The
//!   factored form seeds the initialization, mirroring how the paper wires
//!   MAR's architecture into MARS.
//!
//! The numerical layers live in sibling modules: [`crate::kernels`] holds
//! the facet-similarity and ambient-gradient kernels (and the [`Scratch`]
//! buffers), [`crate::loss`] the push / pull / facet-separating terms, and
//! [`crate::engine`] the batched gradient-accumulation path
//! ([`MultiFacetModel::train_batch`]). This module keeps the parameters,
//! scoring, and the per-triplet **reference** update path
//! ([`MultiFacetModel::train_triplet`]) that the batched engine is asserted
//! equivalent to at batch size 1.
//!
//! ### Interpretive notes (divergences from the paper's notation)
//!
//! 1. **Sphere constraints + shared projections.** Eq. 15 writes the MARS
//!    similarity through `Φ/Ψ`, but Eq. 19's constraint set `Ω` contains the
//!    facet embeddings, and the Riemannian update (Eq. 21) moves a point on
//!    *its own* sphere — which is only well-defined when the facet
//!    embeddings are free parameters. We therefore train MARS in the direct
//!    parameterization, initialized from the factored form.
//! 2. **Ambient gradients for cosine terms.** On the unit sphere,
//!    `∇_x cos(x,y) = y − (xᵀy)x`; the tangent projection inside the
//!    optimizer supplies the `−(xᵀy)x` part, so the model hands the
//!    optimizer the bilinear gradient `y`. This is also what makes the
//!    calibration multiplier `1 + xᵀ∇f/‖∇f‖` informative (see
//!    `mars-optim::riemannian`).
//! 3. **Facet-separating loss direction.** Eq. 12 as printed decreases with
//!    *increasing* cosine, which would collapse the facets it is meant to
//!    spread. We use `softplus(+α·cos)/α`, the monotone-increasing penalty
//!    consistent with Eq. 6's "encourage orthogonality" and the Euclidean
//!    form.

use crate::config::{FacetParam, Geometry, MarsConfig, OptimKind};
use crate::embedding::{EmbeddingTable, FacetTable};
use crate::kernels;
use crate::loss;
// Re-exported here for compatibility with the pre-split layout, where this
// module defined both types.
pub use crate::kernels::Scratch;
pub use crate::loss::TripletLoss;
use mars_data::batch::Triplet;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_optim::{CalibratedRiemannianSgd, Optimizer, RiemannianSgd, Sgd};
use mars_serve::{IndexEmbeddings, IndexMetric, RecQuery, RetrievalScratch};
use mars_tensor::{init, nonlin, ops, rows, Matrix};
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// Trainable parameters, per parameterization (see module docs).
#[derive(Clone, Debug)]
pub enum Params {
    /// Universal embeddings + shared facet projections (MAR).
    Factored {
        user_emb: EmbeddingTable,
        item_emb: EmbeddingTable,
        phi: Vec<Matrix>,
        psi: Vec<Matrix>,
    },
    /// Free facet embeddings (MARS).
    Direct {
        user_facets: FacetTable,
        item_facets: FacetTable,
    },
}

/// The MAR / MARS model.
#[derive(Clone, Debug)]
pub struct MultiFacetModel {
    cfg: MarsConfig,
    num_users: usize,
    num_items: usize,
    params: Params,
    /// Free logits behind the softmaxed per-user facet weights `Θ_u`.
    theta_logits: EmbeddingTable,
}

impl MultiFacetModel {
    /// Initializes a model for the given catalogue sizes.
    ///
    /// Factored mode: uniform universal embeddings (scaled `1/√D`, clipped
    /// to the unit ball) and near-identity projections — at step 0 every
    /// facet space is a mild perturbation of the universal space, and the
    /// facet-separating loss drives them apart.
    ///
    /// Direct mode: facet embeddings are produced by projecting that same
    /// factored initialization, then constrained (normalized for spherical
    /// geometry, ball-clipped for Euclidean).
    ///
    /// # Panics
    /// If the configuration fails [`MarsConfig::validate`].
    pub fn new(cfg: MarsConfig, num_users: usize, num_items: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MarsConfig: {e}");
        }
        assert!(num_users > 0 && num_items > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed); // audit:allow(determinism) — seeded: pure function of the seed
        let k = cfg.facets;
        let d = cfg.dim;

        let scale = 1.0 / (d as f32).sqrt();
        let mut user_emb = EmbeddingTable::uniform(&mut rng, num_users, d, scale);
        let mut item_emb = EmbeddingTable::uniform(&mut rng, num_items, d, scale);
        user_emb.clip_rows_to_unit_ball();
        item_emb.clip_rows_to_unit_ball();
        let phi: Vec<Matrix> = (0..k)
            .map(|_| init::near_identity_matrix(&mut rng, d, 1.0, 0.35 * scale))
            .collect();
        let psi: Vec<Matrix> = (0..k)
            .map(|_| init::near_identity_matrix(&mut rng, d, 1.0, 0.35 * scale))
            .collect();

        let params = match cfg.parameterization {
            FacetParam::Factored => Params::Factored {
                user_emb,
                item_emb,
                phi,
                psi,
            },
            FacetParam::Direct => {
                let mut user_facets = FacetTable::zeros(num_users, k, d);
                let mut item_facets = FacetTable::zeros(num_items, k, d);
                let mut tmp = vec![0.0; d];
                for u in 0..num_users {
                    for (f, m) in phi.iter().enumerate() {
                        m.matvec_t(user_emb.row(u), &mut tmp);
                        user_facets.facet_mut(u, f).copy_from_slice(&tmp);
                    }
                }
                for v in 0..num_items {
                    for (f, m) in psi.iter().enumerate() {
                        m.matvec_t(item_emb.row(v), &mut tmp);
                        item_facets.facet_mut(v, f).copy_from_slice(&tmp);
                    }
                }
                match cfg.geometry {
                    Geometry::Spherical => {
                        user_facets.normalize();
                        item_facets.normalize();
                    }
                    Geometry::Euclidean => {
                        user_facets.clip_to_unit_ball();
                        item_facets.clip_to_unit_ball();
                    }
                }
                Params::Direct {
                    user_facets,
                    item_facets,
                }
            }
        };

        // Uniform facet weights at init (zero logits).
        let theta_logits = EmbeddingTable::zeros(num_users, k);

        Self {
            cfg,
            num_users,
            num_items,
            params,
            theta_logits,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &MarsConfig {
        &self.cfg
    }

    pub fn num_users(&self) -> usize {
        self.num_users
    }

    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Borrow of the parameters (for analysis / persistence).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutable borrow of the parameters (for persistence round-trips).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Raw Θ logits table.
    pub fn theta_logits(&self) -> &EmbeddingTable {
        &self.theta_logits
    }

    /// Mutable Θ logits table (persistence).
    pub fn theta_logits_mut(&mut self) -> &mut EmbeddingTable {
        &mut self.theta_logits
    }

    /// Softmaxed facet weights `Θ_u` of one user.
    pub fn theta(&self, u: UserId) -> Vec<f32> {
        nonlin::softmax_vec(self.theta_logits.row(u as usize))
    }

    /// Writes user `u`'s facet-`k` embedding into `out`.
    pub fn user_facet(&self, u: UserId, k: usize, out: &mut [f32]) {
        match &self.params {
            Params::Factored { user_emb, phi, .. } => {
                phi[k].matvec_t(user_emb.row(u as usize), out);
            }
            Params::Direct { user_facets, .. } => {
                out.copy_from_slice(user_facets.facet(u as usize, k));
            }
        }
    }

    /// Writes item `v`'s facet-`k` embedding into `out`.
    pub fn item_facet(&self, v: ItemId, k: usize, out: &mut [f32]) {
        match &self.params {
            Params::Factored { item_emb, psi, .. } => {
                psi[k].matvec_t(item_emb.row(v as usize), out);
            }
            Params::Direct { item_facets, .. } => {
                out.copy_from_slice(item_facets.facet(v as usize, k));
            }
        }
    }

    /// Writes all `K` facet embeddings of user `u` into a flat `K × D`
    /// buffer.
    pub(crate) fn gather_user_facets(&self, u: UserId, out: &mut [f32]) {
        let d = self.cfg.dim;
        for f in 0..self.cfg.facets {
            self.user_facet(u, f, rows::row_mut(out, d, f));
        }
    }

    /// Writes all `K` facet embeddings of item `v` into a flat `K × D`
    /// buffer.
    pub(crate) fn gather_item_facets(&self, v: ItemId, out: &mut [f32]) {
        let d = self.cfg.dim;
        for f in 0..self.cfg.facets {
            self.item_facet(v, f, rows::row_mut(out, d, f));
        }
    }

    /// Facet-specific similarity `g_k` for the configured geometry
    /// (Eq. 3 Euclidean, Eq. 13 spherical).
    #[inline]
    pub fn facet_similarity(&self, a: &[f32], b: &[f32]) -> f32 {
        kernels::facet_similarity(self.cfg.geometry, a, b)
    }

    /// Cross-facet similarity `g(u, v) = Σ_k θ_u^k g_k(u^k, v^k)`
    /// (Eq. 4 / Eq. 14). Allocates scratch; the trainer and evaluator use
    /// the buffered paths instead.
    pub fn similarity(&self, u: UserId, v: ItemId) -> f32 {
        let d = self.cfg.dim;
        let theta = self.theta(u);
        let mut uf = vec![0.0; d];
        let mut vf = vec![0.0; d];
        let mut s = 0.0;
        for k in 0..self.cfg.facets {
            self.user_facet(u, k, &mut uf);
            self.item_facet(v, k, &mut vf);
            s += theta[k] * self.facet_similarity(&uf, &vf);
        }
        s
    }

    // ------------------------------------------------------------------
    // Training (per-triplet reference path)
    // ------------------------------------------------------------------

    /// Gathers the triplet's facet sets into the scratch buffers.
    pub(crate) fn gather_triplet(&self, t: Triplet, s: &mut Scratch) {
        self.gather_user_facets(t.user, &mut s.uf);
        self.gather_item_facets(t.positive, &mut s.pf);
        self.gather_item_facets(t.negative, &mut s.qf);
    }

    /// Shared gradient staging for both training paths. Expects `s.theta`
    /// and the gathered facet sets (`s.uf/pf/qf`) to be filled; computes the
    /// similarity gradients into `s.du/dp/dq` (overwriting) and the Θ-logit
    /// gradient into `s.theta_grad`. Returns `(push, pull)`.
    pub(crate) fn stage_triplet(&self, gamma: f32, s: &mut Scratch) -> (f32, f32) {
        let geometry = self.cfg.geometry;
        let d = self.cfg.dim;
        let k = self.cfg.facets;

        kernels::similarities(geometry, &s.uf, &s.pf, d, &mut s.gp);
        kernels::similarities(geometry, &s.uf, &s.qf, d, &mut s.gq);
        let s_p = ops::dot(&s.theta, &s.gp);
        let s_q = ops::dot(&s.theta, &s.gq);

        let (push, pull, c_p, c_q) = loss::push_pull(gamma, s_p, s_q, self.cfg.lambda_pull);
        for f in 0..k {
            s.w_p[f] = c_p * s.theta[f];
            s.w_q[f] = c_q * s.theta[f];
        }
        kernels::similarity_gradients(
            geometry, &s.w_p, &s.w_q, &s.uf, &s.pf, &s.qf, &mut s.du, &mut s.dp, &mut s.dq, d,
        );

        // Θ logits gradient through the softmax parameterization.
        for f in 0..k {
            s.theta_upstream[f] = c_p * s.gp[f] + c_q * s.gq[f];
        }
        nonlin::softmax_backward(&s.theta, &s.theta_upstream, &mut s.theta_grad);

        (push, pull)
    }

    /// Applies one SGD/RSGD update for the triplet `(u, v⁺, v⁻)` with the
    /// user's adaptive margin `gamma`, learning rate `lr`. Returns the loss
    /// breakdown *before* the update.
    ///
    /// This is the seed's reference path — one immediate optimizer step per
    /// row per triplet. The batched engine
    /// ([`MultiFacetModel::train_batch`]) is asserted numerically equivalent
    /// to it at batch size 1.
    pub fn train_triplet(
        &mut self,
        t: Triplet,
        gamma: f32,
        lr: f32,
        s: &mut Scratch,
    ) -> TripletLoss {
        let u = t.user as usize;
        let d = self.cfg.dim;
        let k = self.cfg.facets;

        self.gather_triplet(t, s);
        nonlin::softmax(self.theta_logits.row(u), &mut s.theta);
        let (push, pull) = self.stage_triplet(gamma, s);

        // Facet-separating loss over this triplet's entities (Eq. 6/12) —
        // the reference path counts every occurrence.
        let mut facet_loss = 0.0;
        if self.cfg.lambda_facet > 0.0 && k > 1 {
            let geometry = self.cfg.geometry;
            let (alpha, lam) = (self.cfg.alpha, self.cfg.lambda_facet);
            facet_loss += loss::facet_separation(geometry, alpha, lam, &s.uf, d, &mut s.du);
            facet_loss += loss::facet_separation(geometry, alpha, lam, &s.pf, d, &mut s.dp);
            facet_loss += loss::facet_separation(geometry, alpha, lam, &s.qf, d, &mut s.dq);
        }

        // Θ logits update (plain SGD on the softmax parameterization).
        ops::axpy(
            -self.cfg.theta_lr,
            &s.theta_grad,
            self.theta_logits.row_mut(u),
        );

        // Parameter updates.
        self.apply_updates(t, lr, s);

        TripletLoss {
            push,
            pull,
            facet: facet_loss,
        }
    }

    /// Routes the staged gradients into the parameters (immediate steps).
    fn apply_updates(&mut self, t: Triplet, lr: f32, s: &mut Scratch) {
        let k = self.cfg.facets;
        let dim = self.cfg.dim;
        let optimizer = self.cfg.optimizer;
        let geometry = self.cfg.geometry;
        match &mut self.params {
            Params::Direct {
                user_facets,
                item_facets,
            } => {
                let step = |param: &mut [f32], grad: &[f32]| match (optimizer, geometry) {
                    (OptimKind::Sgd, Geometry::Euclidean) => {
                        Sgd::with_max_norm(lr, 1.0).step(param, grad);
                    }
                    (OptimKind::Sgd, Geometry::Spherical) => {
                        // Projected SGD: Euclidean step, renormalize.
                        Sgd::new(lr).step(param, grad);
                        ops::normalize(param);
                    }
                    (OptimKind::Riemannian, _) => {
                        RiemannianSgd::new(lr).step(param, grad);
                    }
                    (OptimKind::CalibratedRiemannian, _) => {
                        CalibratedRiemannianSgd::new(lr).step(param, grad);
                    }
                };
                for f in 0..k {
                    step(
                        user_facets.facet_mut(t.user as usize, f),
                        rows::row(&s.du, dim, f),
                    );
                    step(
                        item_facets.facet_mut(t.positive as usize, f),
                        rows::row(&s.dp, dim, f),
                    );
                    step(
                        item_facets.facet_mut(t.negative as usize, f),
                        rows::row(&s.dq, dim, f),
                    );
                }
            }
            Params::Factored {
                user_emb,
                item_emb,
                phi,
                psi,
            } => {
                let u = t.user as usize;
                let p = t.positive as usize;
                let q = t.negative as usize;
                // Chain rule to universal embeddings first (projections must
                // still hold their pre-update values).
                s.univ_u.fill(0.0);
                s.univ_p.fill(0.0);
                s.univ_q.fill(0.0);
                for f in 0..k {
                    phi[f].matvec(rows::row(&s.du, dim, f), &mut s.tmp);
                    ops::axpy(1.0, &s.tmp, &mut s.univ_u);
                    psi[f].matvec(rows::row(&s.dp, dim, f), &mut s.tmp);
                    ops::axpy(1.0, &s.tmp, &mut s.univ_p);
                    psi[f].matvec(rows::row(&s.dq, dim, f), &mut s.tmp);
                    ops::axpy(1.0, &s.tmp, &mut s.univ_q);
                }
                // Projection gradients: ∂L/∂φ_k = u ⊗ ∂L/∂u^k.
                for f in 0..k {
                    phi[f].ger(-lr, user_emb.row(u), rows::row(&s.du, dim, f));
                    psi[f].ger(-lr, item_emb.row(p), rows::row(&s.dp, dim, f));
                    psi[f].ger(-lr, item_emb.row(q), rows::row(&s.dq, dim, f));
                }
                // Universal embedding steps + ball constraint (Eq. 11).
                let sgd = Sgd::with_max_norm(lr, 1.0);
                sgd.step(user_emb.row_mut(u), &s.univ_u);
                sgd.step(item_emb.row_mut(p), &s.univ_p);
                sgd.step(item_emb.row_mut(q), &s.univ_q);
            }
        }
    }

    /// Re-clips the projections' spectral norms to 1 (factored mode only;
    /// no-op for direct). Together with `‖u‖ ≤ 1` this enforces the facet
    /// constraint `‖u^k‖ ≤ 1` of Eq. 11.
    pub fn enforce_projection_constraint(&mut self) {
        if let Params::Factored { phi, psi, .. } = &mut self.params {
            for m in phi.iter_mut().chain(psi.iter_mut()) {
                m.clip_spectral_norm(1.0, 12);
            }
        }
    }

    /// Checks the geometry invariant: unit sphere (direct+spherical) or unit
    /// ball (facet norms ≤ 1 + tol elsewhere).
    pub fn check_norm_invariant(&self, tol: f32) -> bool {
        match (&self.params, self.cfg.geometry) {
            (
                Params::Direct {
                    user_facets,
                    item_facets,
                },
                Geometry::Spherical,
            ) => user_facets.all_unit(tol) && item_facets.all_unit(tol),
            (
                Params::Direct {
                    user_facets,
                    item_facets,
                },
                Geometry::Euclidean,
            ) => user_facets.max_norm() <= 1.0 + tol && item_facets.max_norm() <= 1.0 + tol,
            (
                Params::Factored {
                    user_emb, item_emb, ..
                },
                _,
            ) => user_emb.max_row_norm() <= 1.0 + tol && item_emb.max_row_norm() <= 1.0 + tol,
        }
    }

    /// Evaluation-time loss of a triplet (no update) — used by the gradient
    /// checks and convergence tests.
    pub fn triplet_loss(&self, t: Triplet, gamma: f32) -> TripletLoss {
        let k = self.cfg.facets;
        let d = self.cfg.dim;
        let geometry = self.cfg.geometry;
        let mut uf = vec![0.0; k * d];
        let mut pf = vec![0.0; k * d];
        let mut qf = vec![0.0; k * d];
        self.gather_user_facets(t.user, &mut uf);
        self.gather_item_facets(t.positive, &mut pf);
        self.gather_item_facets(t.negative, &mut qf);
        let theta = self.theta(t.user);
        let mut s_p = 0.0;
        let mut s_q = 0.0;
        for f in 0..k {
            s_p += theta[f] * self.facet_similarity(rows::row(&uf, d, f), rows::row(&pf, d, f));
            s_q += theta[f] * self.facet_similarity(rows::row(&uf, d, f), rows::row(&qf, d, f));
        }
        let push = (gamma - s_p + s_q).max(0.0);
        let pull = -s_p;
        let mut facet = 0.0;
        if k > 1 {
            let mut sink = vec![0.0; k * d];
            facet += loss::facet_separation(geometry, self.cfg.alpha, 0.0, &uf, d, &mut sink);
            facet += loss::facet_separation(geometry, self.cfg.alpha, 0.0, &pf, d, &mut sink);
            facet += loss::facet_separation(geometry, self.cfg.alpha, 0.0, &qf, d, &mut sink);
        }
        TripletLoss { push, pull, facet }
    }
}

impl MultiFacetModel {
    /// Top-N recommendation: the `n` highest-scoring items for `user`
    /// excluding `seen` (the user's training interactions, **sorted
    /// ascending**), highest first. Deterministic tie-break by item id.
    ///
    /// Since the serving layer landed this is a thin wrapper over the
    /// `mars-serve` retrieval engine (bounded-heap selection instead of a
    /// catalogue-wide sort) — kept for convenience; production callers
    /// should hold a `mars_serve::Retriever` and reuse its scratch. Ties
    /// and NaN now follow `mars_serve::rank_cmp`'s total order: for real
    /// scores this is exactly the old descending-score/ascending-id
    /// order, while NaN scores — which used to poison the sort's
    /// transitivity via `partial_cmp(..).unwrap_or(Equal)` — now
    /// deterministically rank last.
    ///
    /// ```
    /// use mars_core::{MarsConfig, MultiFacetModel};
    /// let model = MultiFacetModel::new(MarsConfig::mars(2, 8), 4, 10);
    /// let recs = model.recommend(0, &[1, 2], 3);
    /// assert_eq!(recs.len(), 3);
    /// assert!(recs.iter().all(|(v, _)| *v != 1 && *v != 2));
    /// ```
    pub fn recommend(&self, user: UserId, seen: &[ItemId], n: usize) -> Vec<(ItemId, f32)> {
        let query = RecQuery::top_k(user, n).excluding(seen);
        let mut ranked = Vec::new();
        mars_serve::rank_into(
            self,
            self.num_items,
            mars_serve::DEFAULT_CHUNK_ITEMS,
            &query,
            &mut RetrievalScratch::new(),
            &mut ranked,
        );
        ranked
    }
}

impl Scorer for MultiFacetModel {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        self.similarity(user, item)
    }

    fn score_many(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        // Share the user-side work (facet projection + softmax) across
        // candidates — the evaluator scores 100 negatives per test case.
        let k = self.cfg.facets;
        let d = self.cfg.dim;
        let theta = self.theta(user);
        let mut uf = vec![0.0; k * d];
        self.gather_user_facets(user, &mut uf);
        let mut vf = vec![0.0; d];
        out.clear();
        out.reserve(items.len());
        for &v in items {
            let mut sum = 0.0;
            for f in 0..k {
                self.item_facet(v, f, &mut vf);
                sum += theta[f] * self.facet_similarity(rows::row(&uf, d, f), &vf);
            }
            out.push(sum);
        }
    }

    fn score_block(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        // Batched-evaluation hot path. In the direct parameterization both
        // facet tables store each entity's K facets contiguously, so every
        // candidate's whole facet set is scored by one fused
        // `kernels::similarities` call (mars-tensor::rows dot/dist kernels)
        // on *borrowed* blocks — no per-facet gather copies. Bit-identical
        // to `score_many` by the kernels' bitwise-agreement guarantee and
        // the identical facet-order reduction.
        match &self.params {
            Params::Direct {
                user_facets,
                item_facets,
            } => {
                let k = self.cfg.facets;
                let d = self.cfg.dim;
                let theta = self.theta(user);
                let ub = user_facets.entity(user as usize);
                let mut sims = vec![0.0; k];
                out.clear();
                out.reserve(items.len());
                match self.cfg.geometry {
                    Geometry::Spherical => {
                        // `ops::cosine` recomputes ‖u^k‖ per candidate;
                        // across a 101-candidate block the user-side norms
                        // are loop-invariant, so hoist them. Same ops on
                        // the same inputs (norm, dot, the zero guard, the
                        // clamp) ⇒ the per-facet values stay bit-identical
                        // to `facet_similarity`.
                        let mut na = vec![0.0; k];
                        for (f, n) in na.iter_mut().enumerate() {
                            *n = ops::norm(rows::row(ub, d, f));
                        }
                        for &v in items {
                            let vb = item_facets.entity(v as usize);
                            rows::dot_rows(ub, vb, d, &mut sims);
                            let mut sum = 0.0;
                            for f in 0..k {
                                let nb = ops::norm(rows::row(vb, d, f));
                                let sim = if na[f] <= f32::MIN_POSITIVE || nb <= f32::MIN_POSITIVE {
                                    0.0
                                } else {
                                    (sims[f] / (na[f] * nb)).clamp(-1.0, 1.0)
                                };
                                sum += theta[f] * sim;
                            }
                            out.push(sum);
                        }
                    }
                    Geometry::Euclidean => {
                        for &v in items {
                            rows::dist_sq_rows(ub, item_facets.entity(v as usize), d, &mut sims);
                            let mut sum = 0.0;
                            for f in 0..k {
                                sum += theta[f] * -sims[f];
                            }
                            out.push(sum);
                        }
                    }
                }
            }
            // Factored mode projects facets on the fly; the shared-user-work
            // path is already the best available order of operations.
            Params::Factored { .. } => self.score_many(user, items, out),
        }
    }
}

impl MultiFacetModel {
    /// Scales `v` to unit length, or zeroes it when the norm underflows —
    /// the same guard `facet_similarity`'s cosine applies, so a degenerate
    /// facet contributes 0 on both the exact and the indexed path.
    fn normalize_or_zero(v: &mut [f32]) {
        let n = ops::norm(v);
        if n <= f32::MIN_POSITIVE {
            v.fill(0.0);
        } else {
            for x in v.iter_mut() {
                *x /= n;
            }
        }
    }
}

/// IVF index surface (`mars-serve::index`): per-facet vectors such that
/// `Σ_f θ_u^f · m(q_f, x_f)` equals the model similarity. Spherical
/// geometry pre-normalizes both sides so cosine becomes an inner product;
/// Euclidean geometry exposes the raw facets under negative squared L2.
impl IndexEmbeddings for MultiFacetModel {
    fn num_index_facets(&self) -> usize {
        self.cfg.facets
    }

    fn index_dim(&self) -> usize {
        self.cfg.dim
    }

    fn index_metric(&self) -> IndexMetric {
        match self.cfg.geometry {
            Geometry::Spherical => IndexMetric::InnerProduct,
            Geometry::Euclidean => IndexMetric::NegSquaredL2,
        }
    }

    fn item_index_vector(&self, v: ItemId, f: usize, out: &mut [f32]) {
        self.item_facet(v, f, out);
        if self.cfg.geometry == Geometry::Spherical {
            Self::normalize_or_zero(out);
        }
    }

    fn query_index_vector(&self, user: UserId, f: usize, out: &mut [f32]) -> f32 {
        self.user_facet(user, f, out);
        if self.cfg.geometry == Geometry::Spherical {
            Self::normalize_or_zero(out);
        }
        self.theta(user)[f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarsConfig;

    fn triplet() -> Triplet {
        Triplet {
            user: 1,
            positive: 2,
            negative: 5,
        }
    }

    fn mar_model() -> MultiFacetModel {
        // Exercise the factored (shared-projection) parameterization here;
        // the direct default is covered by the MARS tests.
        let mut cfg = MarsConfig::mar(3, 6);
        cfg.parameterization = crate::config::FacetParam::Factored;
        cfg.seed = 9;
        MultiFacetModel::new(cfg, 4, 8)
    }

    fn mars_model() -> MultiFacetModel {
        let mut cfg = MarsConfig::mars(3, 6);
        cfg.seed = 9;
        MultiFacetModel::new(cfg, 4, 8)
    }

    #[test]
    fn recommend_excludes_seen_and_ranks_descending() {
        let mut m = mars_model();
        let mut s = Scratch::new(3, 6);
        for _ in 0..300 {
            m.train_triplet(triplet(), 0.5, 0.05, &mut s);
        }
        let seen: Vec<ItemId> = vec![0, 3];
        let recs = m.recommend(1, &seen, 4);
        assert_eq!(recs.len(), 4);
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {recs:?}");
        }
        assert!(recs.iter().all(|(v, _)| !seen.contains(v)));
        // Trained positive (item 2) should be the top recommendation.
        assert_eq!(recs[0].0, 2);
    }

    #[test]
    fn recommend_truncates_to_catalogue() {
        let m = mars_model();
        let recs = m.recommend(0, &[], 100);
        assert_eq!(recs.len(), 8); // only 8 items exist
    }

    #[test]
    fn recommend_preserves_the_pre_serve_behaviour_exactly() {
        // `recommend` is now a thin wrapper over the mars-serve engine;
        // its output must stay bit-identical to the seed's materialize +
        // full-sort implementation (whose comparator agrees with
        // `rank_cmp` on every real score the model produces).
        for (mut m, s) in [
            (mar_model(), Scratch::new(3, 6)),
            (mars_model(), Scratch::new(3, 6)),
        ] {
            let mut s = s;
            for i in 0..60 {
                let t = Triplet {
                    user: (i % 4) as UserId,
                    positive: (i % 8) as ItemId,
                    negative: ((i + 3) % 8) as ItemId,
                };
                m.train_triplet(t, 0.4, 0.1, &mut s);
            }
            for u in 0..4u32 {
                for (seen, n) in [(vec![], 3usize), (vec![1, 2], 8), (vec![0, 4, 7], 100)] {
                    // The seed implementation, inlined verbatim.
                    let candidates: Vec<ItemId> =
                        (0..8).filter(|v| seen.binary_search(v).is_err()).collect();
                    let mut scores = Vec::new();
                    m.score_many(u, &candidates, &mut scores);
                    let mut expect: Vec<(ItemId, f32)> =
                        candidates.into_iter().zip(scores).collect();
                    expect.sort_by(|a, b| {
                        // Deliberately inlines the seed's comparator to pin
                        // the compat contract.
                        // audit:allow(nan-ordering) — verbatim seed code
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    });
                    expect.truncate(n);

                    let got = m.recommend(u, &seen, n);
                    let as_bits = |v: &[(ItemId, f32)]| -> Vec<(ItemId, u32)> {
                        v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
                    };
                    assert_eq!(as_bits(&got), as_bits(&expect), "user {u} seen {seen:?}");
                }
            }
        }
    }

    #[test]
    fn theta_starts_uniform() {
        let m = mar_model();
        let t = m.theta(0);
        for &w in &t {
            assert!((w - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn init_respects_geometry_constraints() {
        assert!(mar_model().check_norm_invariant(1e-4));
        let mars = mars_model();
        assert!(mars.check_norm_invariant(1e-4));
        match mars.params() {
            Params::Direct { user_facets, .. } => assert!(user_facets.all_unit(1e-4)),
            _ => panic!("MARS must be direct"),
        }
    }

    #[test]
    fn similarity_matches_manual_computation() {
        let m = mars_model();
        let theta = m.theta(1);
        let mut uf = vec![0.0; 6];
        let mut vf = vec![0.0; 6];
        let mut expect = 0.0;
        for k in 0..3 {
            m.user_facet(1, k, &mut uf);
            m.item_facet(2, k, &mut vf);
            expect += theta[k] * ops::cosine(&uf, &vf);
        }
        assert!((m.similarity(1, 2) - expect).abs() < 1e-5);
    }

    #[test]
    fn score_many_agrees_with_score() {
        for m in [mar_model(), mars_model()] {
            let items: Vec<ItemId> = (0..8).collect();
            let mut batch = Vec::new();
            m.score_many(1, &items, &mut batch);
            for (i, &v) in items.iter().enumerate() {
                let single = m.score(1, v);
                assert!(
                    (batch[i] - single).abs() < 1e-5,
                    "item {v}: batch {} vs single {single}",
                    batch[i]
                );
            }
        }
    }

    #[test]
    fn score_block_is_bit_identical_to_score_many() {
        // The batched evaluator's exactness rests on this: the fused
        // direct-mode block path and the per-facet score_many path must
        // agree to the last bit, for both geometries (plus the factored
        // fallback, trivially).
        let mut direct_euclidean = MarsConfig::mar(3, 6);
        direct_euclidean.seed = 9;
        for m in [
            mar_model(),
            mars_model(),
            MultiFacetModel::new(direct_euclidean, 4, 8),
        ] {
            let items: Vec<ItemId> = (0..8).rev().collect();
            let mut many = Vec::new();
            let mut block = Vec::new();
            for u in 0..4 {
                m.score_many(u, &items, &mut many);
                m.score_block(u, &items, &mut block);
                let many_bits: Vec<u32> = many.iter().map(|v| v.to_bits()).collect();
                let block_bits: Vec<u32> = block.iter().map(|v| v.to_bits()).collect();
                assert_eq!(many_bits, block_bits, "user {u} diverged");
                // The full Scorer contract: `score` must agree bitwise too
                // (the sequential protocol scores positives through it).
                for (idx, &v) in items.iter().enumerate() {
                    assert_eq!(m.score(u, v).to_bits(), block_bits[idx], "item {v}");
                }
            }
        }
    }

    #[test]
    fn train_step_reduces_triplet_loss_mar() {
        let mut m = mar_model();
        let t = triplet();
        let before = m.triplet_loss(t, 0.5);
        let mut s = Scratch::new(3, 6);
        for _ in 0..50 {
            m.train_triplet(t, 0.5, 0.05, &mut s);
        }
        let after = m.triplet_loss(t, 0.5);
        assert!(
            after.total(0.1, 0.01) < before.total(0.1, 0.01),
            "before {:?} after {:?}",
            before,
            after
        );
    }

    #[test]
    fn train_step_reduces_triplet_loss_mars() {
        let mut m = mars_model();
        let t = triplet();
        let before = m.triplet_loss(t, 0.5);
        let mut s = Scratch::new(3, 6);
        for _ in 0..50 {
            m.train_triplet(t, 0.5, 0.05, &mut s);
        }
        let after = m.triplet_loss(t, 0.5);
        assert!(
            after.total(0.1, 0.01) < before.total(0.1, 0.01),
            "before {:?} after {:?}",
            before,
            after
        );
    }

    #[test]
    fn training_separates_positive_from_negative() {
        for mut m in [mar_model(), mars_model()] {
            let t = triplet();
            let mut s = Scratch::new(3, 6);
            for _ in 0..200 {
                m.train_triplet(t, 0.5, 0.05, &mut s);
            }
            let sp = m.score(t.user, t.positive);
            let sq = m.score(t.user, t.negative);
            assert!(sp > sq, "positive {sp} should outscore negative {sq}");
        }
    }

    #[test]
    fn mars_preserves_sphere_through_training() {
        let mut m = mars_model();
        let mut s = Scratch::new(3, 6);
        for i in 0..100 {
            let t = Triplet {
                user: (i % 4) as UserId,
                positive: (i % 8) as ItemId,
                negative: ((i + 3) % 8) as ItemId,
            };
            m.train_triplet(t, 0.4, 0.1, &mut s);
        }
        assert!(m.check_norm_invariant(1e-3));
    }

    #[test]
    fn mar_ball_constraint_holds_through_training() {
        let mut m = mar_model();
        let mut s = Scratch::new(3, 6);
        for i in 0..100 {
            let t = Triplet {
                user: (i % 4) as UserId,
                positive: (i % 8) as ItemId,
                negative: ((i + 3) % 8) as ItemId,
            };
            m.train_triplet(t, 0.4, 0.1, &mut s);
        }
        m.enforce_projection_constraint();
        assert!(m.check_norm_invariant(1e-3));
    }

    #[test]
    fn theta_moves_towards_discriminative_facets() {
        // After training on one triplet repeatedly, theta should deviate
        // from uniform (some facet becomes more useful).
        let mut m = mars_model();
        let mut s = Scratch::new(3, 6);
        for _ in 0..300 {
            m.train_triplet(triplet(), 0.8, 0.05, &mut s);
        }
        let theta = m.theta(1);
        let spread = theta.iter().cloned().fold(0.0f32, f32::max)
            - theta.iter().cloned().fold(1.0f32, f32::min);
        assert!(spread > 1e-3, "theta stayed uniform: {theta:?}");
        let sum: f32 = theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ivf_full_probe_reproduces_exact_retrieval_for_every_geometry() {
        // The IndexEmbeddings impl must satisfy the index module's
        // equivalence guarantee: with every cell probed, ExactRescore
        // retrieval is bit-identical to the exact scan — spherical
        // (normalized IP index), Euclidean (raw negative-L2 index), and
        // the factored parameterization (facets projected on the fly).
        use mars_serve::{IvfConfig, RecQuery, Retriever};
        let mut direct_euclidean = MarsConfig::mar(3, 6);
        direct_euclidean.seed = 9;
        for (mut m, _) in [
            (mars_model(), 0),
            (MultiFacetModel::new(direct_euclidean, 4, 8), 0),
            (mar_model(), 0),
        ] {
            let mut s = Scratch::new(3, 6);
            for i in 0..40 {
                let t = Triplet {
                    user: (i % 4) as UserId,
                    positive: (i % 8) as ItemId,
                    negative: ((i + 3) % 8) as ItemId,
                };
                m.train_triplet(t, 0.4, 0.1, &mut s);
            }
            let n = m.num_items();
            let exact = Retriever::new(m, n);
            let indexed = exact.clone().with_index(IvfConfig {
                cells: 4,
                nprobe: 4,
                ..IvfConfig::default()
            });
            let as_bits = |v: &[(ItemId, f32)]| -> Vec<(ItemId, u32)> {
                v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
            };
            for u in 0..4u32 {
                let q = RecQuery::top_k(u, 5).excluding(&[1, 6]);
                assert_eq!(
                    as_bits(&indexed.retrieve(&q).ranked),
                    as_bits(&exact.retrieve(&q).ranked),
                    "user {u}"
                );
            }
        }
    }

    #[test]
    fn spectral_constraint_bounds_facet_norms_in_factored_mode() {
        let mut m = mar_model();
        let mut s = Scratch::new(3, 6);
        // Train hard with a large lr to blow up the projections...
        for i in 0..200 {
            let t = Triplet {
                user: (i % 4) as UserId,
                positive: (i % 8) as ItemId,
                negative: ((i + 1) % 8) as ItemId,
            };
            m.train_triplet(t, 1.0, 0.5, &mut s);
        }
        // ...then enforce and verify ‖u^k‖ ≤ ~1.
        m.enforce_projection_constraint();
        let mut buf = vec![0.0; 6];
        for u in 0..4 {
            for k in 0..3 {
                m.user_facet(u, k, &mut buf);
                assert!(
                    ops::norm(&buf) <= 1.05,
                    "facet norm {} exceeds ball",
                    ops::norm(&buf)
                );
            }
        }
    }
}
