//! Batched, data-parallel training engine.
//!
//! The seed's [`MultiFacetModel::train_triplet`] walks one triplet at a time
//! and takes an immediate optimizer step per touched row — `3K` steps (and
//! allocations) per triplet. This module implements the batched alternative:
//!
//! 1. **Accumulate** ([`MultiFacetModel::accumulate_batch`]): gradients for
//!    a whole mini-batch are computed against *frozen* parameters and staged
//!    in a [`BatchAccum`] keyed by `(table, row, facet)`. Rows touched by
//!    many triplets (popular items, active users) sum their contributions
//!    instead of stepping repeatedly. Because this phase takes `&self`, the
//!    trainer can run several accumulators in parallel over user-sharded
//!    slices of the batch.
//! 2. **Finish** ([`MultiFacetModel::finish_batch`]): the facet-separating
//!    term (Eq. 6/12) is added **once per unique entity** in the batch
//!    (matching the objective's per-entity sum rather than the reference
//!    path's per-occurrence stochastic weighting), then every staged row
//!    takes a single optimizer step through the
//!    [`mars_optim::Optimizer::apply`] accumulation API — tangent projection
//!    and angular calibration are evaluated per row on the *summed*
//!    gradient, so a batch of size 1 reproduces the per-triplet step
//!    exactly (asserted in `tests/grad_check.rs`).
//!
//! Determinism: accumulation order is the batch's triplet order, apply order
//! is first-touch order, and shard merging ([`BatchAccum::merge_from`])
//! walks shards in a fixed order — so a run is reproducible for a fixed
//! seed, batch size and thread count.

use crate::config::{FacetParam, Geometry, MarsConfig, OptimKind};
use crate::kernels::Scratch;
use crate::loss::{self, BatchLoss, TripletLoss};
use crate::model::{MultiFacetModel, Params};
use mars_data::batch::Triplet;
use mars_data::UserId;
use mars_optim::{CalibratedRiemannianSgd, GradAccumulator, Optimizer, RiemannianSgd, Sgd};
use mars_tensor::{nonlin, ops, rows, Matrix};
use std::collections::{HashMap, HashSet};

/// Parameter-table tags inside accumulator keys.
const TAG_USER_FACET: u64 = 1;
const TAG_ITEM_FACET: u64 = 2;
const TAG_UNIV_USER: u64 = 3;
const TAG_UNIV_ITEM: u64 = 4;

/// Packs `(table, row, facet)` into an accumulator key. Rows fit easily:
/// 40 bits for the row, 16 for the facet index.
#[inline]
fn key(tag: u64, row: usize, facet: usize) -> u64 {
    debug_assert!(facet < (1 << 16));
    debug_assert!(row < (1 << 40));
    (tag << 56) | ((row as u64) << 16) | facet as u64
}

#[inline]
fn decode(k: u64) -> (u64, usize, usize) {
    (
        k >> 56,
        ((k >> 16) & ((1 << 40) - 1)) as usize,
        (k & 0xFFFF) as usize,
    )
}

/// Staging area for one mini-batch of gradients against a
/// [`MultiFacetModel`].
pub struct BatchAccum {
    /// Facet-row (direct) or universal-row (factored) gradients, dim `D`.
    rows: GradAccumulator,
    /// Θ-logit gradients, dim `K`.
    theta: GradAccumulator,
    /// Projection-matrix gradients (factored mode only, else empty).
    dphi: Vec<Matrix>,
    dpsi: Vec<Matrix>,
    /// Entities touched this batch, first-touch order (for the
    /// once-per-entity facet-separation pass).
    touched: Vec<(u64, usize)>,
    seen: HashSet<u64>,
    /// Per-user softmaxed Θ, cached for the batch (logits are frozen).
    theta_cache: HashMap<UserId, Vec<f32>>,
}

impl BatchAccum {
    /// An empty accumulator sized for the model configuration.
    pub fn new(cfg: &MarsConfig) -> Self {
        let (dphi, dpsi) = match cfg.parameterization {
            FacetParam::Factored => (
                (0..cfg.facets)
                    .map(|_| Matrix::zeros(cfg.dim, cfg.dim))
                    .collect(),
                (0..cfg.facets)
                    .map(|_| Matrix::zeros(cfg.dim, cfg.dim))
                    .collect(),
            ),
            FacetParam::Direct => (Vec::new(), Vec::new()),
        };
        Self {
            rows: GradAccumulator::new(cfg.dim),
            theta: GradAccumulator::new(cfg.facets),
            dphi,
            dpsi,
            touched: Vec::new(),
            seen: HashSet::new(),
            theta_cache: HashMap::new(),
        }
    }

    /// Clears all staged state for a fresh mini-batch.
    pub fn begin_batch(&mut self) {
        self.rows.clear();
        self.theta.clear();
        for m in self.dphi.iter_mut().chain(self.dpsi.iter_mut()) {
            m.as_mut_slice().fill(0.0);
        }
        self.touched.clear();
        self.seen.clear();
        self.theta_cache.clear();
    }

    /// Folds a shard accumulator into this one, preserving the shard's
    /// internal order. Merging shards in a fixed order keeps the combined
    /// first-touch order — and therefore the apply order — deterministic.
    pub fn merge_from(&mut self, other: &BatchAccum) {
        self.rows.merge_from(&other.rows);
        self.theta.merge_from(&other.theta);
        for (m, o) in self.dphi.iter_mut().zip(&other.dphi) {
            m.add_scaled(1.0, o);
        }
        for (m, o) in self.dpsi.iter_mut().zip(&other.dpsi) {
            m.add_scaled(1.0, o);
        }
        for &(tag, row) in &other.touched {
            self.touch_entity(tag, row);
        }
    }

    fn touch_entity(&mut self, tag: u64, row: usize) {
        if self.seen.insert(key(tag, row, 0)) {
            self.touched.push((tag, row));
        }
    }
}

impl MultiFacetModel {
    /// Computes and stages gradients for `batch` (pairs of triplet and
    /// per-user margin `γ_u`) against the current — frozen — parameters.
    ///
    /// Takes `&self`: shard this over a thread scope for data parallelism,
    /// then merge the accumulators in shard order. The facet-separating term
    /// is *not* staged here (see [`MultiFacetModel::finish_batch`]); the
    /// returned sums carry `facet = 0`.
    pub fn accumulate_batch(
        &self,
        batch: &[(Triplet, f32)],
        s: &mut Scratch,
        acc: &mut BatchAccum,
    ) -> BatchLoss {
        let cfg = self.config();
        let k = cfg.facets;
        let d = cfg.dim;
        let track_entities = cfg.lambda_facet > 0.0 && k > 1;
        let mut out = BatchLoss::default();

        for &(t, gamma) in batch {
            let u = t.user as usize;
            let p = t.positive as usize;
            let q = t.negative as usize;

            // Θ_u, softmaxed once per user per batch (logits are frozen).
            let theta = acc
                .theta_cache
                .entry(t.user)
                .or_insert_with(|| nonlin::softmax_vec(self.theta_logits().row(u)));
            s.theta.copy_from_slice(theta);

            self.gather_triplet(t, s);
            let (push, pull) = self.stage_triplet(gamma, s);
            out.add(TripletLoss {
                push,
                pull,
                facet: 0.0,
            });

            acc.theta.add(key(TAG_USER_FACET, u, 0), &s.theta_grad);
            if track_entities {
                acc.touch_entity(TAG_USER_FACET, u);
                acc.touch_entity(TAG_ITEM_FACET, p);
                acc.touch_entity(TAG_ITEM_FACET, q);
            }

            match self.params() {
                Params::Direct { .. } => {
                    for f in 0..k {
                        acc.rows
                            .add(key(TAG_USER_FACET, u, f), rows::row(&s.du, d, f));
                        acc.rows
                            .add(key(TAG_ITEM_FACET, p, f), rows::row(&s.dp, d, f));
                        acc.rows
                            .add(key(TAG_ITEM_FACET, q, f), rows::row(&s.dq, d, f));
                    }
                }
                Params::Factored {
                    user_emb,
                    item_emb,
                    phi,
                    psi,
                } => {
                    // Chain rule to the universal embeddings (projections
                    // are frozen for the whole batch).
                    s.univ_u.fill(0.0);
                    s.univ_p.fill(0.0);
                    s.univ_q.fill(0.0);
                    for f in 0..k {
                        phi[f].matvec(rows::row(&s.du, d, f), &mut s.tmp);
                        ops::axpy(1.0, &s.tmp, &mut s.univ_u);
                        psi[f].matvec(rows::row(&s.dp, d, f), &mut s.tmp);
                        ops::axpy(1.0, &s.tmp, &mut s.univ_p);
                        psi[f].matvec(rows::row(&s.dq, d, f), &mut s.tmp);
                        ops::axpy(1.0, &s.tmp, &mut s.univ_q);
                    }
                    acc.rows.add(key(TAG_UNIV_USER, u, 0), &s.univ_u);
                    acc.rows.add(key(TAG_UNIV_ITEM, p, 0), &s.univ_p);
                    acc.rows.add(key(TAG_UNIV_ITEM, q, 0), &s.univ_q);
                    // Projection gradients: ∂L/∂φ_k = u ⊗ ∂L/∂u^k.
                    for f in 0..k {
                        acc.dphi[f].ger(1.0, user_emb.row(u), rows::row(&s.du, d, f));
                        acc.dpsi[f].ger(1.0, item_emb.row(p), rows::row(&s.dp, d, f));
                        acc.dpsi[f].ger(1.0, item_emb.row(q), rows::row(&s.dq, d, f));
                    }
                }
            }
        }
        out
    }

    /// Adds the facet-separating gradients — once per unique entity in the
    /// batch — and applies one optimizer step per staged row. Returns the
    /// summed facet-separation loss.
    pub fn finish_batch(&mut self, acc: &mut BatchAccum, lr: f32, s: &mut Scratch) -> f64 {
        let facet_loss = self.stage_separation(acc, s);
        self.apply_batch(acc, lr);
        facet_loss
    }

    /// One-stop batched update: begin + accumulate + finish. Returns the
    /// loss sums (facet term counted once per unique entity).
    pub fn train_batch(
        &mut self,
        batch: &[(Triplet, f32)],
        lr: f32,
        s: &mut Scratch,
        acc: &mut BatchAccum,
    ) -> BatchLoss {
        acc.begin_batch();
        let mut out = self.accumulate_batch(batch, s, acc);
        let facet = self.finish_batch(acc, lr, s);
        out.facet += facet;
        out
    }

    /// Stages the facet-separating term for every unique touched entity
    /// (first-touch order) and returns the summed loss.
    fn stage_separation(&self, acc: &mut BatchAccum, s: &mut Scratch) -> f64 {
        let cfg = self.config();
        let k = cfg.facets;
        let d = cfg.dim;
        if !(cfg.lambda_facet > 0.0 && k > 1) {
            return 0.0;
        }
        let (geometry, alpha, lam) = (cfg.geometry, cfg.alpha, cfg.lambda_facet);
        let mut total = 0.0f64;
        // `touched` is appended only in `accumulate_batch` / `merge_from`,
        // both of which precede this pass; take it to sidestep the borrow.
        let touched = std::mem::take(&mut acc.touched);
        for &(tag, row) in &touched {
            match tag {
                TAG_USER_FACET => self.gather_user_facets(row as UserId, &mut s.uf),
                _ => self.gather_item_facets(row as u32, &mut s.uf),
            }
            s.du.fill(0.0);
            total += loss::facet_separation(geometry, alpha, lam, &s.uf, d, &mut s.du) as f64;
            match self.params() {
                Params::Direct { .. } => {
                    for f in 0..k {
                        acc.rows.add(key(tag, row, f), rows::row(&s.du, d, f));
                    }
                }
                Params::Factored {
                    user_emb,
                    item_emb,
                    phi,
                    psi,
                } => {
                    let (projections, emb, univ_tag) = if tag == TAG_USER_FACET {
                        (phi, user_emb, TAG_UNIV_USER)
                    } else {
                        (psi, item_emb, TAG_UNIV_ITEM)
                    };
                    s.univ_u.fill(0.0);
                    for f in 0..k {
                        projections[f].matvec(rows::row(&s.du, d, f), &mut s.tmp);
                        ops::axpy(1.0, &s.tmp, &mut s.univ_u);
                    }
                    acc.rows.add(key(univ_tag, row, 0), &s.univ_u);
                    let dmats = if tag == TAG_USER_FACET {
                        &mut acc.dphi
                    } else {
                        &mut acc.dpsi
                    };
                    for f in 0..k {
                        dmats[f].ger(1.0, emb.row(row), rows::row(&s.du, d, f));
                    }
                }
            }
        }
        acc.touched = touched;
        total
    }

    /// Applies one step per staged row and clears the accumulator's
    /// gradient state.
    fn apply_batch(&mut self, acc: &mut BatchAccum, lr: f32) {
        let cfg = self.config();
        let theta_lr = cfg.theta_lr;
        let optimizer = cfg.optimizer;
        let geometry = cfg.geometry;
        let k = cfg.facets;

        // Θ logits: plain SGD on the softmax parameterization.
        let logits = self.theta_logits_mut();
        acc.theta.drain(|key, grad, _| {
            let (_, row, _) = decode(key);
            ops::axpy(-theta_lr, grad, logits.row_mut(row));
        });

        match self.params_mut() {
            Params::Direct {
                user_facets,
                item_facets,
            } => {
                let mut resolve = |key: u64, step: &mut dyn FnMut(&mut [f32])| {
                    let (tag, row, facet) = decode(key);
                    match tag {
                        TAG_USER_FACET => step(user_facets.facet_mut(row, facet)),
                        TAG_ITEM_FACET => step(item_facets.facet_mut(row, facet)),
                        _ => unreachable!("direct mode stages only facet rows"),
                    }
                };
                match (optimizer, geometry) {
                    (OptimKind::Sgd, Geometry::Euclidean) => {
                        Sgd::with_max_norm(lr, 1.0).apply(&mut acc.rows, resolve);
                    }
                    (OptimKind::Sgd, Geometry::Spherical) => {
                        // Projected SGD: Euclidean step, renormalize.
                        let sgd = Sgd::new(lr);
                        sgd.apply(&mut acc.rows, |key, step| {
                            resolve(key, &mut |param: &mut [f32]| {
                                step(param);
                                ops::normalize(param);
                            });
                        });
                    }
                    (OptimKind::Riemannian, _) => {
                        RiemannianSgd::new(lr).apply(&mut acc.rows, resolve);
                    }
                    (OptimKind::CalibratedRiemannian, _) => {
                        CalibratedRiemannianSgd::new(lr).apply(&mut acc.rows, resolve);
                    }
                }
            }
            Params::Factored {
                user_emb,
                item_emb,
                phi,
                psi,
            } => {
                // Universal embedding steps + ball constraint (Eq. 11).
                let sgd = Sgd::with_max_norm(lr, 1.0);
                sgd.apply(&mut acc.rows, |key, step| {
                    let (tag, row, _) = decode(key);
                    match tag {
                        TAG_UNIV_USER => step(user_emb.row_mut(row)),
                        TAG_UNIV_ITEM => step(item_emb.row_mut(row)),
                        _ => unreachable!("factored mode stages only universal rows"),
                    }
                });
                for f in 0..k {
                    phi[f].add_scaled(-lr, &acc.dphi[f]);
                    psi[f].add_scaled(-lr, &acc.dpsi[f]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MarsConfig;

    fn batch() -> Vec<(Triplet, f32)> {
        vec![
            (
                Triplet {
                    user: 0,
                    positive: 1,
                    negative: 4,
                },
                0.5,
            ),
            (
                Triplet {
                    user: 1,
                    positive: 1,
                    negative: 3,
                },
                0.4,
            ),
            (
                Triplet {
                    user: 0,
                    positive: 2,
                    negative: 4,
                },
                0.5,
            ),
        ]
    }

    #[test]
    fn batched_training_reduces_loss() {
        for cfg in [MarsConfig::mars(3, 6), MarsConfig::mar(3, 6)] {
            let mut m = MultiFacetModel::new(cfg.clone(), 4, 6);
            let mut s = Scratch::new(3, 6);
            let mut acc = BatchAccum::new(&cfg);
            let before: f32 = batch()
                .iter()
                .map(|&(t, g)| {
                    m.triplet_loss(t, g)
                        .total(cfg.lambda_pull, cfg.lambda_facet)
                })
                .sum();
            for _ in 0..60 {
                m.train_batch(&batch(), 0.05, &mut s, &mut acc);
            }
            let after: f32 = batch()
                .iter()
                .map(|&(t, g)| {
                    m.triplet_loss(t, g)
                        .total(cfg.lambda_pull, cfg.lambda_facet)
                })
                .sum();
            assert!(after < before, "{}: {before} → {after}", cfg.tag());
        }
    }

    #[test]
    fn batched_training_preserves_sphere() {
        let cfg = MarsConfig::mars(2, 5);
        let mut m = MultiFacetModel::new(cfg.clone(), 4, 6);
        let mut s = Scratch::new(2, 5);
        let mut acc = BatchAccum::new(&cfg);
        for _ in 0..40 {
            m.train_batch(&batch(), 0.1, &mut s, &mut acc);
        }
        assert!(m.check_norm_invariant(1e-3));
    }

    #[test]
    fn repeated_rows_sum_instead_of_duplicate_steps() {
        // Items 1 and 4 and user 0 repeat across the batch: staged rows must
        // dedup to unique (row, facet) pairs.
        let cfg = MarsConfig::mars(2, 4);
        let m = MultiFacetModel::new(cfg.clone(), 4, 6);
        let mut s = Scratch::new(2, 4);
        let mut acc = BatchAccum::new(&cfg);
        acc.begin_batch();
        let bl = m.accumulate_batch(&batch(), &mut s, &mut acc);
        assert_eq!(bl.count, 3);
        // Unique entities: users {0,1}, items {1,2,3,4} → 6 × K facet rows.
        assert_eq!(acc.rows.len(), 6 * 2);
        // Θ rows: one per unique user.
        assert_eq!(acc.theta.len(), 2);
    }

    #[test]
    fn merge_matches_single_accumulation() {
        let cfg = MarsConfig::mars(2, 4);
        let m = MultiFacetModel::new(cfg.clone(), 4, 6);
        let mut s = Scratch::new(2, 4);
        let all = batch();

        let mut single = BatchAccum::new(&cfg);
        single.begin_batch();
        m.accumulate_batch(&all, &mut s, &mut single);

        // Shard by user (0 → shard a, 1 → shard b), then merge.
        let shard_a: Vec<_> = all.iter().copied().filter(|(t, _)| t.user == 0).collect();
        let shard_b: Vec<_> = all.iter().copied().filter(|(t, _)| t.user == 1).collect();
        let mut a = BatchAccum::new(&cfg);
        a.begin_batch();
        m.accumulate_batch(&shard_a, &mut s, &mut a);
        let mut b = BatchAccum::new(&cfg);
        b.begin_batch();
        m.accumulate_batch(&shard_b, &mut s, &mut b);
        a.merge_from(&b);

        assert_eq!(single.rows.len(), a.rows.len());
        single.rows.for_each(|key, grad| {
            let merged = a.rows.grad(key).expect("merged accumulator missing a row");
            for (x, y) in grad.iter().zip(merged) {
                assert!((x - y).abs() < 1e-5, "row {key:#x} differs");
            }
        });
    }
}
