//! Integration tests for the unified retrieval API over every real scorer
//! in the workspace: the eight baselines plus MAR (factored) and MARS
//! (direct), all trained briefly on one planted dataset.
//!
//! The contract under test is the serving layer's exactness guarantee:
//! bounded-heap retrieval is **bit-identical** to the full-sort reference
//! at every chunk size and every worker count, for every model — and
//! `MultiFacetModel::recommend` is the same ranked list again.

use mars_repro::baselines::{
    bpr::Bpr, cml::Cml, lrml::Lrml, metricf::MetricF, neumf::NeuMf, nmf::Nmf, sml::Sml,
    transcf::TransCf, BaselineConfig, ImplicitRecommender,
};
use mars_repro::core::{MarsConfig, Trainer};
use mars_repro::data::{Dataset, ItemId, SyntheticConfig, SyntheticDataset, UserId};
use mars_repro::metrics::beyond_accuracy::{catalogue_coverage, exposure_gini};
use mars_repro::metrics::Scorer;
use mars_repro::runtime::WorkerPool;
use mars_repro::serve::{full_sort_top_k, RecQuery, RecResponse, RetrievalScratch, Retriever};
use std::sync::Arc;

const USERS: usize = 40;
const ITEMS: usize = 45;

fn data() -> SyntheticDataset {
    SyntheticDataset::generate(
        "serving-suite",
        &SyntheticConfig {
            num_users: USERS,
            num_items: ITEMS,
            num_interactions: 900,
            num_categories: 3,
            seed: 23,
            ..Default::default()
        },
    )
}

/// Every scorer the workspace ships, briefly trained on `d`.
fn all_models(d: &Dataset) -> Vec<(&'static str, Arc<dyn Scorer + Sync + Send>)> {
    let cfg = BaselineConfig {
        epochs: 2,
        ..BaselineConfig::quick(8)
    };
    let mut baselines: Vec<Box<dyn ImplicitRecommender + Sync + Send>> = vec![
        Box::new(Bpr::new(cfg.clone(), USERS, ITEMS)),
        Box::new(Nmf::new(cfg.clone(), USERS, ITEMS)),
        Box::new(NeuMf::new(cfg.clone(), USERS, ITEMS)),
        Box::new(Cml::new(cfg.clone(), USERS, ITEMS)),
        Box::new(MetricF::new(cfg.clone(), USERS, ITEMS)),
        Box::new(TransCf::new(cfg.clone(), USERS, ITEMS)),
        Box::new(Lrml::new(cfg.clone(), USERS, ITEMS)),
        Box::new(Sml::new(cfg, USERS, ITEMS)),
    ];
    let mut out: Vec<(&'static str, Arc<dyn Scorer + Sync + Send>)> = Vec::new();
    for mut b in baselines.drain(..) {
        b.fit(d);
        out.push((b.name(), Arc::from(b as Box<dyn Scorer + Sync + Send>)));
    }

    let mut mars = MarsConfig::mars(2, 8);
    mars.epochs = 2;
    out.push(("MARS", Arc::new(Trainer::new(mars).fit(d).model)));
    let mut mar = MarsConfig::mar(2, 8);
    mar.parameterization = mars_repro::core::FacetParam::Factored;
    mar.epochs = 2;
    out.push(("MAR", Arc::new(Trainer::new(mar).fit(d).model)));
    out
}

fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
    v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

#[test]
fn every_scorer_is_bit_identical_to_full_sort_at_any_chunk_size() {
    let data = data();
    let d = &data.dataset;
    for (name, model) in all_models(d) {
        for chunk in [1usize, 17, 101, 1024] {
            let r = Retriever::from_arc(Arc::clone(&model), ITEMS).with_chunk_items(chunk);
            let mut scratch = RetrievalScratch::new();
            for u in (0..USERS as UserId).step_by(7) {
                let seen = d.train.items_of(u);
                for k in [1usize, 10, ITEMS, ITEMS + 5] {
                    let q = RecQuery::top_k(u, k).excluding(seen);
                    let got = r.retrieve_with(&q, &mut scratch);
                    let expect = full_sort_top_k(model.as_ref(), ITEMS, &q);
                    assert_eq!(
                        bits(&got.ranked),
                        bits(&expect),
                        "{name} diverged: user {u}, chunk {chunk}, k {k}"
                    );
                    assert!(got.ranked.iter().all(|(v, _)| !seen.contains(v)));
                }
            }
        }
    }
}

#[test]
fn every_scorer_serves_batches_bit_identically_at_any_worker_count() {
    let data = data();
    let d = &data.dataset;
    for (name, model) in all_models(d) {
        let r = Retriever::from_arc(Arc::clone(&model), ITEMS);
        let queries: Vec<RecQuery<'_>> = (0..USERS as UserId)
            .map(|u| RecQuery::top_k(u, 10).excluding(d.train.items_of(u)))
            .collect();
        let mut scratch = RetrievalScratch::new();
        let reference: Vec<RecResponse> = queries
            .iter()
            .map(|q| r.retrieve_with(q, &mut scratch))
            .collect();
        for workers in [1usize, 2, 4, 8] {
            let got = r.retrieve_batch(&queries, &WorkerPool::new(workers));
            assert_eq!(got.len(), reference.len());
            for (g, e) in got.iter().zip(&reference) {
                assert_eq!(g.user, e.user);
                assert_eq!(
                    bits(&g.ranked),
                    bits(&e.ranked),
                    "{name} diverged at {workers} workers (user {})",
                    e.user
                );
            }
        }
    }
}

#[test]
fn recommend_is_the_retriever_in_disguise() {
    let data = data();
    let d = &data.dataset;
    let mut cfg = MarsConfig::mars(2, 8);
    cfg.epochs = 2;
    let model = Trainer::new(cfg).fit(d).model;
    let r = Retriever::new(model, ITEMS);
    for u in 0..USERS as UserId {
        let seen = d.train.items_of(u);
        let via_recommend = r.model().recommend(u, seen, 10);
        let via_retriever = r.retrieve(&RecQuery::top_k(u, 10).excluding(seen));
        assert_eq!(bits(&via_recommend), bits(&via_retriever.ranked));
    }
}

#[test]
fn responses_feed_the_beyond_accuracy_metrics() {
    // The RecResponse item lists plug straight into coverage/Gini — the
    // shape the examples print.
    let data = data();
    let d = &data.dataset;
    let mut cfg = MarsConfig::mars(2, 8);
    cfg.epochs = 2;
    let r = Retriever::new(Trainer::new(cfg).fit(d).model, ITEMS);
    let queries: Vec<RecQuery<'_>> = (0..USERS as UserId)
        .map(|u| RecQuery::top_k(u, 10).excluding(d.train.items_of(u)))
        .collect();
    let lists: Vec<Vec<ItemId>> = r
        .retrieve_batch(&queries, &WorkerPool::new(2))
        .iter()
        .map(RecResponse::items)
        .collect();
    assert_eq!(lists.len(), USERS);
    // A list is only shorter than k when the user has fewer than k
    // unseen items left — the planted data has a few near-saturated
    // users, so pin the exact expected length instead of a blanket 10.
    for (u, l) in lists.iter().enumerate() {
        let available = ITEMS - d.train.items_of(u as UserId).len();
        assert_eq!(l.len(), 10.min(available), "user {u}");
    }
    let coverage = catalogue_coverage(&lists, ITEMS);
    assert!(coverage > 0.0 && coverage <= 1.0, "coverage {coverage}");
    let gini = exposure_gini(&lists, ITEMS);
    assert!((0.0..=1.0).contains(&gini), "gini {gini}");
}
