//! End-to-end integration tests spanning all workspace crates: data
//! generation → training → evaluation → analysis → persistence.

use mars_repro::core::analysis::{category_proportions, facet_item_matrix, separation_stats};
use mars_repro::core::{io, MarsConfig, MultiFacetModel, Trainer};
use mars_repro::data::profiles::{Profile, Scale};
use mars_repro::data::{SyntheticConfig, SyntheticDataset};
use mars_repro::metrics::{RankingEvaluator, Scorer};
use mars_repro::tensor::Pca;

fn quick(mut cfg: MarsConfig) -> MarsConfig {
    cfg.epochs = 6;
    cfg
}

fn small_data() -> SyntheticDataset {
    SyntheticDataset::generate(
        "e2e",
        &SyntheticConfig {
            num_users: 80,
            num_items: 60,
            num_interactions: 2_400,
            num_categories: 4,
            dirichlet_alpha: 0.2,
            seed: 3,
            ..Default::default()
        },
    )
}

#[test]
fn full_pipeline_mars() {
    let data = small_data();
    let d = &data.dataset;
    let ev = RankingEvaluator::paper();

    // Train.
    let outcome = Trainer::new(quick(MarsConfig::mars(3, 12))).fit(d);
    assert_eq!(outcome.history.len(), 6);
    assert!(outcome.model.check_norm_invariant(1e-3));

    // Training must beat the untrained model.
    let untrained = MultiFacetModel::new(quick(MarsConfig::mars(3, 12)), 80, 60);
    let before = ev.evaluate(&untrained, d);
    let after = ev.evaluate(&outcome.model, d);
    assert!(after.hr_at(10) > before.hr_at(10));
    assert!(after.ndcg_at(10) > before.ndcg_at(10));

    // Analysis runs over the trained model.
    let props = category_proportions(&outcome.model, d, 3);
    assert_eq!(props.len(), 3);
    let emb = facet_item_matrix(&outcome.model, 0);
    let stats = separation_stats(&emb, &d.item_categories, 1);
    assert!(stats.intra.is_finite() && stats.inter.is_finite());

    // PCA projection for Figure 7 works on the real embedding matrix.
    let pca = Pca::fit(&emb, 2, 30);
    let proj = pca.transform(&emb);
    assert_eq!(proj.shape(), (60, 2));
}

#[test]
fn full_pipeline_mar_euclidean() {
    let data = small_data();
    let d = &data.dataset;
    let outcome = Trainer::new(quick(MarsConfig::mar(2, 12))).fit(d);
    assert!(outcome.model.check_norm_invariant(1e-3));
    let report = RankingEvaluator::paper().evaluate(&outcome.model, d);
    assert!(report.cases > 0);
    assert!(report.hr_at(20) >= report.hr_at(10));
}

#[test]
fn persistence_roundtrip_preserves_scores() {
    let data = small_data();
    let d = &data.dataset;
    let cfg = quick(MarsConfig::mars(2, 8));
    let model = Trainer::new(cfg.clone()).fit(d).model;

    let mut path = std::env::temp_dir();
    path.push(format!("mars-e2e-{}.bin", std::process::id()));
    io::save(&model, &path).unwrap();
    let loaded = io::load(cfg, &path).unwrap();
    std::fs::remove_file(&path).ok();

    for u in [0u32, 7, 33] {
        for v in [0u32, 11, 59] {
            assert_eq!(model.score(u, v), loaded.score(u, v));
        }
    }
    // Loaded model evaluates identically.
    let ev = RankingEvaluator::paper();
    let a = ev.evaluate(&model, d);
    let b = ev.evaluate(&loaded, d);
    assert_eq!(a.hr, b.hr);
    assert_eq!(a.ndcg, b.ndcg);
}

#[test]
fn profiles_generate_and_train() {
    // Smallest profile end-to-end: the harness path used by every
    // table/figure binary.
    let data = Profile::Delicious.generate(Scale::Small);
    let d = &data.dataset;
    assert!(d.split_is_consistent());
    assert!(d.num_categories > 0);
    let model = Trainer::new(quick(MarsConfig::mars(2, 8))).fit(d).model;
    let report = RankingEvaluator::paper().evaluate(&model, d);
    assert!(report.cases > 100, "expected a real test set");
    assert!(report.hr_at(10) > 0.0);
}

#[test]
fn multifacet_beats_single_space_on_conflict_data() {
    // The paper's central claim, as a regression test: on data with planted
    // cross-facet conflicts (independent cluster assignments per facet),
    // the K-facet model must outrank the single-space model of equal total
    // dimension. Seeds/budgets chosen so the gap is far from noise.
    use mars_repro::data::{generate_latent_metric, LatentMetricConfig};
    let data = generate_latent_metric(
        "conflict",
        &LatentMetricConfig {
            num_users: 250,
            num_items: 180,
            num_interactions: 9_000,
            facets: 2,
            clusters_per_facet: 6,
            facet_alpha: 0.2,
            cluster_alpha: 0.12,
            seed: 21,
            ..Default::default()
        },
    );
    let d = &data.dataset;
    let ev = RankingEvaluator::paper();

    let mut single = MarsConfig::cml_like(24);
    single.epochs = 12;
    let single_ndcg = ev
        .evaluate(&Trainer::new(single).fit(d).model, d)
        .ndcg_at(10);

    let mut multi = MarsConfig::mars(2, 12); // equal total dimension
    multi.epochs = 12;
    let multi_ndcg = ev
        .evaluate(&Trainer::new(multi).fit(d).model, d)
        .ndcg_at(10);

    assert!(
        multi_ndcg > single_ndcg,
        "multi-facet ({multi_ndcg}) should beat single-space ({single_ndcg}) on conflict data"
    );
}

#[test]
fn evaluation_is_model_agnostic_and_comparable() {
    // Same candidate sets for every model: two models evaluated twice give
    // identical reports, and a better scorer gives a better report.
    let data = small_data();
    let d = &data.dataset;
    let ev = RankingEvaluator::paper();
    let model = Trainer::new(quick(MarsConfig::mars(2, 8))).fit(d).model;
    let r1 = ev.evaluate(&model, d);
    let r2 = ev.evaluate(&model, d);
    assert_eq!(r1.hr, r2.hr);
    assert_eq!(r1.mrr, r2.mrr);
}
