//! Integration tests over the baseline zoo: every baseline must train,
//! evaluate, and produce sane scores through the shared protocol — the
//! invariants Table II relies on.

use mars_repro::baselines::{
    bpr::Bpr, cml::Cml, lrml::Lrml, metricf::MetricF, neumf::NeuMf, nmf::Nmf, sml::Sml,
    transcf::TransCf, BaselineConfig, ImplicitRecommender,
};
use mars_repro::data::{SyntheticConfig, SyntheticDataset};
use mars_repro::metrics::{RankingEvaluator, Report};

fn data() -> SyntheticDataset {
    SyntheticDataset::generate(
        "baseline-suite",
        &SyntheticConfig {
            num_users: 70,
            num_items: 60,
            num_interactions: 2_000,
            num_categories: 3,
            seed: 17,
            ..Default::default()
        },
    )
}

fn run(model: &mut (dyn ImplicitRecommender + Sync), d: &mars_repro::data::Dataset) -> Report {
    model.fit(d);
    RankingEvaluator::paper().evaluate(model, d)
}

/// `dyn ImplicitRecommender` must be usable (the harness relies on the
/// trait being object-safe through `Scorer`).
#[test]
fn all_baselines_train_and_rank_above_chance() {
    let data = data();
    let d = &data.dataset;
    let cfg = BaselineConfig::quick(12);
    let mut models: Vec<Box<dyn ImplicitRecommender + Sync>> = vec![
        Box::new(Bpr::new(cfg.clone(), 70, 60)),
        Box::new(Nmf::new(cfg.clone(), 70, 60)),
        Box::new(NeuMf::new(
            BaselineConfig {
                lr: 0.02,
                ..cfg.clone()
            },
            70,
            60,
        )),
        Box::new(Cml::new(cfg.clone(), 70, 60)),
        Box::new(MetricF::new(cfg.clone(), 70, 60)),
        Box::new(TransCf::new(cfg.clone(), 70, 60)),
        Box::new(Lrml::new(cfg.clone(), 70, 60)),
        Box::new(Sml::new(cfg.clone(), 70, 60)),
    ];
    // Chance level for HR@10 with 100 negatives is ~10/101 ≈ 0.099; with a
    // planted structure and training every baseline must clear it.
    for model in models.iter_mut() {
        let report = run(model.as_mut(), d);
        assert!(
            report.hr_at(10) > 0.099,
            "{} ranks at or below chance: {}",
            model.name(),
            report.hr_at(10)
        );
        assert!(report.auc > 0.5, "{} AUC below random", model.name());
    }
}

#[test]
fn baseline_names_match_paper_tables() {
    let cfg = BaselineConfig::quick(4);
    let names: Vec<&str> = vec![
        Bpr::new(cfg.clone(), 2, 2).name(),
        Nmf::new(cfg.clone(), 2, 2).name(),
        NeuMf::new(cfg.clone(), 2, 2).name(),
        Cml::new(cfg.clone(), 2, 2).name(),
        MetricF::new(cfg.clone(), 2, 2).name(),
        TransCf::new(cfg.clone(), 2, 2).name(),
        Lrml::new(cfg.clone(), 2, 2).name(),
        Sml::new(cfg.clone(), 2, 2).name(),
    ];
    assert_eq!(
        names,
        vec!["BPR", "NMF", "NeuMF", "CML", "MetricF", "TransCF", "LRML", "SML"]
    );
}

#[test]
fn deterministic_baselines_given_seed() {
    let data = data();
    let d = &data.dataset;
    let cfg = BaselineConfig::quick(8);
    let mut a = Cml::new(cfg.clone(), 70, 60);
    let mut b = Cml::new(cfg, 70, 60);
    a.fit(d);
    b.fit(d);
    let ra = RankingEvaluator::paper().evaluate(&a, d);
    let rb = RankingEvaluator::paper().evaluate(&b, d);
    assert_eq!(ra.hr, rb.hr);
    assert_eq!(ra.ndcg, rb.ndcg);
}
