//! Chaos test for the fault-tolerant serving layer.
//!
//! One `RecService` is driven through the fault families of
//! `mars_serve::fault` — scorer panics under concurrent hot-swaps, NaN
//! storms, injected latency — plus corrupt-snapshot load attempts, and
//! after every phase the harness re-checks the service's standing
//! invariants:
//!
//! * **No caller is ever stranded** — every submitted request resolves
//!   with `Ok` or a *typed* error appropriate to its phase; `Stopped`
//!   never appears while the service is live (the restart budget
//!   replenishes on healthy progress).
//! * **No response mixes epochs** — every successful response is
//!   bit-identical to the direct-retrieval reference of **exactly one**
//!   published snapshot, even while publishes race the panic storm.
//! * **No corrupt snapshot is ever published** — a truncated or
//!   bit-flipped model file fails `io::load` with a typed error and the
//!   old epoch keeps serving.
//! * **The service returns to its latency SLO** — after all faults are
//!   disarmed, p99 recovers to within 2× the fault-free baseline (with a
//!   small absolute floor to keep the bound meaningful on noisy CI).
//!
//! `CHAOS_SMOKE=1` shrinks the request counts for a quick CI pass; the
//! phase structure and every invariant stay identical.

use mars_repro::core::{io, MarsConfig, MultiFacetModel};
use mars_repro::data::{ItemId, UserId};
use mars_repro::metrics::Scorer;
use mars_repro::serve::{
    DegradeConfig, Fault, FaultConfig, FaultScorer, RecRequest, RecResponse, RecService, Retriever,
    ServiceConfig, ServiceError, ServingSnapshot,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CATALOG: usize = 512;
const K: usize = 10;
const CLIENTS: usize = 4;
const EPOCHS: usize = 3;

/// A deterministic hash scorer whose output depends on an epoch tag —
/// two epochs never agree on a ranked list, which is what makes the
/// "matches exactly one epoch" check meaningful.
struct Tagged {
    tag: u64,
}

impl Scorer for Tagged {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let mut h = self.tag ^ ((user as u64) << 32 | item as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 29;
        (h % 100_000) as f32 / 100_000.0
    }
}

type ChaosScorer = FaultScorer<Tagged>;

fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
    v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

fn p99(latencies: &mut [Duration]) -> Duration {
    assert!(!latencies.is_empty());
    latencies.sort();
    let idx = (latencies.len() as f64 * 0.99).ceil() as usize;
    latencies[idx.saturating_sub(1).min(latencies.len() - 1)]
}

/// Fires `n` sequential requests per client thread and returns every
/// `(user, outcome, latency)` observed. Panics only on a stranded caller
/// (a hang would fail the test harness's own timeout).
fn run_load(
    service: &Arc<RecService<ChaosScorer>>,
    n: usize,
    budget: Option<Duration>,
) -> Vec<(UserId, Result<RecResponse, ServiceError>, Duration)> {
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(service);
            thread::spawn(move || {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let user = ((c * n + i) % 97) as UserId;
                    let mut req = RecRequest::top_k(user, K);
                    if let Some(b) = budget {
                        req = req.within(b);
                    }
                    let t0 = Instant::now();
                    let outcome = service.retrieve(&req);
                    out.push((user, outcome, t0.elapsed()));
                }
                out
            })
        })
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread must not die"))
        .collect()
}

/// Asserts `resp` is bit-identical to the direct-retrieval reference of
/// exactly one published epoch — the no-epoch-mixing invariant.
fn assert_one_epoch(refs: &[Retriever<ChaosScorer>], user: UserId, resp: &RecResponse) {
    let got = bits(&resp.ranked);
    let q = RecRequest::top_k(user, K);
    let matches = refs
        .iter()
        .filter(|r| bits(&r.retrieve(&q.as_query()).ranked) == got)
        .count();
    assert_eq!(
        matches, 1,
        "response for user {user} matched {matches} epochs — epoch mixing or torn snapshot"
    );
}

#[test]
fn chaos_faults_never_strand_callers_and_the_service_recovers() {
    let smoke = std::env::var("CHAOS_SMOKE").is_ok();
    let reqs = if smoke { 150 } else { 600 };

    // One FaultScorer per epoch: the service snapshot and the reference
    // retriever share the instance (Retriever::from_arc), so armed NaN
    // verdicts agree call-for-call.
    // ~2 sleeps per 512-item scan ⇒ ~1ms injected per request: enough to
    // trip a sub-millisecond EWMA trigger, cheap enough that the latency
    // phase stays a second, not a minute.
    let fault_cfg = FaultConfig {
        panic_every: 20_000,
        sleep_every: 256,
        sleep_for: Duration::from_micros(500),
        ..FaultConfig::default()
    };
    let scorers: Vec<Arc<ChaosScorer>> = (0..EPOCHS as u64)
        .map(|tag| Arc::new(FaultScorer::new(Tagged { tag }, fault_cfg)))
        .collect();
    let refs: Vec<Retriever<ChaosScorer>> = scorers
        .iter()
        .map(|s| Retriever::from_arc(Arc::clone(s), CATALOG))
        .collect();
    let arm_all = |fault: Fault, on: bool| {
        for s in &scorers {
            s.arm(fault, on);
        }
    };

    let service = Arc::new(RecService::start(
        refs[0].clone(),
        ServiceConfig {
            queue_depth: 256,
            max_batch: 8,
            max_wait: Duration::from_micros(100),
            threads: 2,
            // Generous enough that healthy traffic never trips it; the
            // deadline sub-phase overrides per request.
            default_deadline: Some(Duration::from_secs(5)),
            // The panic storm can fault several incarnations in a row
            // before a healthy batch lands; the budget only needs to
            // outlast the longest such run (healthy progress refills it).
            restart_budget: 10,
            degrade: DegradeConfig {
                high_backlog: 64,
                low_backlog: 4,
                // The latency phase injects ~1ms per request ⇒ EWMA well
                // above this; fault-free traffic is well below it.
                high_latency: Some(Duration::from_micros(300)),
                step_down_after: 2,
                step_up_after: 3,
            },
        },
    ));

    // ---- Phase A: fault-free baseline ------------------------------------
    let baseline = run_load(&service, reqs, None);
    let mut base_lat: Vec<Duration> = Vec::new();
    for (user, outcome, lat) in &baseline {
        let resp = outcome.as_ref().expect("baseline must be fault-free");
        assert!(!resp.degraded, "baseline must serve at full fidelity");
        assert_one_epoch(&refs[..1], *user, resp);
        base_lat.push(*lat);
    }
    let p99_baseline = p99(&mut base_lat);

    // ---- Phase B: panic storm under concurrent hot-swaps -----------------
    arm_all(Fault::Panic, true);
    let stop_publishing = Arc::new(AtomicBool::new(false));
    let publisher = {
        let service = Arc::clone(&service);
        let refs: Vec<_> = refs.to_vec();
        let stop = Arc::clone(&stop_publishing);
        thread::spawn(move || {
            let mut e = 0usize;
            let mut publishes = 0u64;
            // ORDERING: plain stop flag — the thread join synchronizes
            // everything else.
            while !stop.load(Ordering::Relaxed) {
                e = (e + 1) % EPOCHS;
                service.publish(refs[e].clone());
                publishes += 1;
                thread::sleep(Duration::from_millis(3));
            }
            publishes
        })
    };
    let stormed = run_load(&service, reqs, None);
    // ORDERING: stop flag; `join` below synchronizes the hand-off.
    stop_publishing.store(true, Ordering::Relaxed);
    let publishes = publisher.join().unwrap();
    arm_all(Fault::Panic, false);

    let mut ok_in_storm = 0u64;
    let mut internal_in_storm = 0u64;
    for (user, outcome, _) in &stormed {
        match outcome {
            Ok(resp) => {
                ok_in_storm += 1;
                // Verified post-hoc with panics disarmed: scores are pure
                // in (tag, user, item), so the reference ranking equals
                // what the service computed mid-storm.
                assert_one_epoch(&refs, *user, resp);
            }
            // The one fault a panicked batch may surface.
            Err(ServiceError::Internal) => internal_in_storm += 1,
            Err(e) => panic!("panic storm produced unexpected error {e:?}"),
        }
    }
    let s = service.stats();
    assert!(publishes > 0, "publisher never ran");
    assert_eq!(service.snapshot_version(), publishes);
    assert!(ok_in_storm > 0, "storm served nothing");
    assert!(
        s.batch_faults > 0 && internal_in_storm > 0,
        "panic schedule never fired (batch_faults={}, internal={internal_in_storm})",
        s.batch_faults
    );
    assert_eq!(
        s.dispatcher_restarts, s.batch_faults,
        "every batch fault must be followed by a supervisor restart"
    );

    // ---- Phase C: NaN storm ----------------------------------------------
    arm_all(Fault::Nan, true);
    let nan_phase = run_load(&service, reqs, None);
    for (user, outcome, _) in &nan_phase {
        let resp = outcome
            .as_ref()
            .expect("NaN scores rank last — they must never fault a batch");
        // ~10% NaN over a 512-item catalogue cannot crowd real scores out
        // of a top-10: rank_cmp's total order keeps every NaN below every
        // real score.
        assert!(
            resp.ranked.iter().all(|(_, s)| !s.is_nan()),
            "NaN leaked into a top-{K} for user {user}"
        );
        // Purity: the reference FaultScorer shares the seed and the armed
        // NaN flag, so bit-identity must hold through the storm too.
        assert_one_epoch(&refs, *user, resp);
    }
    arm_all(Fault::Nan, false);

    // ---- Phase D: injected latency — degradation + deadline drops --------
    // Publish a two-rung ladder for the current epoch. The rungs are
    // equal-fidelity clones, so bit-identity keeps holding; what we
    // observe is the *controller*: the EWMA latency trigger steps the
    // rung down and the responses get flagged.
    let current = service.snapshot().full().clone();
    service.publish(ServingSnapshot::ladder(vec![current.clone(), current]));
    arm_all(Fault::Latency, true);
    let slow_phase = run_load(&service, reqs.min(200), None);
    let degraded_responses = slow_phase
        .iter()
        .filter(|(_, o, _)| o.as_ref().is_ok_and(|r| r.degraded))
        .count();
    assert!(
        degraded_responses > 0,
        "latency never pushed the ladder off rung 0"
    );
    assert!(service.stats().degraded_served > 0);
    // Tiny budgets under the same injected latency: some requests must
    // expire while queued and be dropped at dequeue, typed.
    let hurried = run_load(&service, reqs.min(200), Some(Duration::from_micros(300)));
    let mut deadline_drops = 0u64;
    for (_, outcome, _) in &hurried {
        match outcome {
            Ok(_) => {}
            Err(ServiceError::DeadlineExceeded) => deadline_drops += 1,
            Err(e) => panic!("deadline phase produced unexpected error {e:?}"),
        }
    }
    assert!(
        deadline_drops > 0,
        "300µs budgets under 2ms injected sleeps must drop at dequeue"
    );
    assert_eq!(service.stats().deadline_dropped, deadline_drops);
    arm_all(Fault::Latency, false);

    // ---- Phase E: corrupt snapshots are rejected, old epoch keeps serving
    let cfg = MarsConfig::mars(2, 8);
    let model = MultiFacetModel::new(cfg.clone(), 16, 64);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("mars-chaos-{}.mdl", std::process::id()));
    io::save(&model, &path).expect("healthy save");
    let healthy = std::fs::read(&path).unwrap();
    // Bit flip mid-payload ⇒ typed corruption, not a bad model.
    let mut flipped = healthy.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    match io::load(cfg.clone(), &path) {
        Err(io::SnapshotError::Corrupt(_)) | Err(io::SnapshotError::ShapeMismatch { .. }) => {}
        other => panic!("bit flip must be detected, got {other:?}"),
    }
    // Truncation ⇒ typed truncation.
    std::fs::write(&path, &healthy[..healthy.len() - 7]).unwrap();
    match io::load(cfg, &path) {
        Err(io::SnapshotError::Truncated(_)) | Err(io::SnapshotError::TrailerMismatch { .. }) => {}
        other => panic!("truncation must be detected, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
    // Neither failed load touched the service: same version, still serving.
    let version_before = service.snapshot_version();
    let still = service.retrieve(&RecRequest::top_k(1, K)).unwrap();
    assert_eq!(service.snapshot_version(), version_before);
    assert_eq!(still.len(), K);

    // ---- Phase F: recovery to SLO ----------------------------------------
    // Sequential quiet traffic first: lets the EWMA decay and the ladder
    // step back up to full fidelity.
    for _ in 0..40 {
        service.retrieve(&RecRequest::top_k(3, K)).unwrap();
    }
    assert_eq!(
        service.stats().current_rung,
        0,
        "ladder must recover to full fidelity once faults clear"
    );
    let recovered = run_load(&service, reqs, None);
    let mut rec_lat = Vec::new();
    for (user, outcome, lat) in &recovered {
        let resp = outcome.as_ref().expect("recovered service must serve");
        assert!(!resp.degraded, "recovered service must serve full fidelity");
        assert_one_epoch(&refs, *user, resp);
        rec_lat.push(*lat);
    }
    let p99_recovered = p99(&mut rec_lat);
    // 2× the fault-free baseline, with an absolute floor so a very fast
    // baseline doesn't turn scheduler noise into flakes.
    let slo = (p99_baseline * 2).max(Duration::from_millis(10));
    assert!(
        p99_recovered <= slo,
        "p99 after faults {p99_recovered:?} exceeds SLO {slo:?} (baseline {p99_baseline:?})"
    );

    // Global accounting: everything submitted was resolved, nothing shed
    // (blocking retrieve), nothing stopped.
    let s = service.stats();
    assert_eq!(s.backlog, 0, "no caller left queued");
    assert_eq!(s.shed, 0, "blocking submitters never shed");
    let observed = (baseline.len() + stormed.len() + nan_phase.len() + slow_phase.len() + hurried.len()
            + recovered.len()) as u64
            + 1 // phase E probe
            + 40; // phase F warm-up
    assert_eq!(s.submitted, observed, "every submission accounted for");
}
