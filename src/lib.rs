//! # mars-repro
//!
//! Umbrella crate for the MARS reproduction workspace. It re-exports the
//! individual crates so the examples and integration tests can depend on a
//! single package, and so downstream users can write `use mars_repro::core::…`
//! without wiring up every workspace member themselves.
//!
//! The interesting code lives in the member crates:
//!
//! * [`tensor`] — dense linear algebra substrate (vectors, matrices, PCA).
//! * [`data`] — implicit-feedback datasets, the synthetic multi-facet
//!   generator, samplers and leave-one-out splits.
//! * [`metrics`] — HR@K / nDCG@K and the 100-negative ranking protocol.
//! * [`optim`] — SGD and (calibrated) Riemannian SGD on the unit sphere.
//! * [`core`] — the MAR / MARS models, losses and trainer.
//! * [`baselines`] — BPR, NMF, NeuMF, CML, MetricF, TransCF, LRML, SML.

pub use mars_baselines as baselines;
pub use mars_core as core;
pub use mars_data as data;
pub use mars_metrics as metrics;
pub use mars_optim as optim;
pub use mars_tensor as tensor;
