//! Live serving: train in the background, hot-swap snapshots into a
//! running [`RecService`], and watch the recommendations drift as the
//! model learns — without ever pausing the serving loop.
//!
//! ```text
//! cargo run --release --example live_serving
//! ```
//!
//! A trainer thread runs MARS in short stages and publishes a fresh
//! [`Retriever`] snapshot after each one; the main thread keeps polling
//! a watched user's top-5 through the service the whole time. Every
//! response is computed against exactly one coherent snapshot (the
//! service resolves the snapshot once per micro-batch), so the printed
//! lists step cleanly from version to version — never a torn mix of two
//! epochs.

use mars_repro::core::{io, MarsConfig, MultiFacetModel, Trainer};
use mars_repro::data::{SyntheticConfig, SyntheticDataset};
use mars_repro::serve::{RecRequest, RecService, Retriever, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Training stages published as snapshots (version 1..=STAGES).
const STAGES: usize = 5;
/// Epochs per stage — short on purpose, so the drift is visible step
/// by step rather than one jump from cold to converged.
const EPOCHS_PER_STAGE: usize = 3;
const K: usize = 5;

fn main() {
    // 1. Data: the quickstart world — 200 users, 150 items, 6 planted
    //    latent categories.
    let data = SyntheticDataset::generate(
        "live-serving",
        &SyntheticConfig {
            num_users: 200,
            num_items: 150,
            num_interactions: 6_000,
            num_categories: 6,
            dirichlet_alpha: 0.25,
            seed: 1,
            ..Default::default()
        },
    );
    let d = &data.dataset;
    let watched: u32 = 0;
    let seen: Vec<_> = d.train.items_of(watched).to_vec();

    // 2. Serve from epoch zero: the service starts on an *untrained*
    //    snapshot (version 0) and never stops answering while the
    //    trainer catches up behind it.
    let mut cfg = MarsConfig::mars(3, 16);
    cfg.epochs = EPOCHS_PER_STAGE;
    let model = MultiFacetModel::new(cfg.clone(), d.num_users(), d.num_items());
    let service = RecService::start(
        Retriever::new(model.clone(), d.num_items()),
        ServiceConfig::default(),
    );
    let req = RecRequest::top_k(watched, K).excluding(seen);
    let before = service.retrieve(&req).expect("service alive").ranked;

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // 3. Background trainer: each stage warm-starts from the last
        //    stage's weights and publishes the result as the next
        //    snapshot version. Serving threads pick it up on their next
        //    micro-batch; in-flight batches finish on the old snapshot.
        scope.spawn(|| {
            let trainer = Trainer::new(cfg.clone());
            let snapshot_path =
                std::env::temp_dir().join(format!("live-serving-{}.mdl", std::process::id()));
            let mut model = model.clone();
            for stage in 1..=STAGES {
                let outcome = trainer.fit_from(model, d);
                model = outcome.model;
                let loss = outcome.history.last().map_or(f32::NAN, |s| s.mean_loss);
                // Publish through durable storage, exactly as a restart
                // would: write the crash-safe MARSMDL2 snapshot (per-section
                // CRCs, atomic temp-file + fsync + rename publish), read it
                // back, and serve the *reloaded* weights. A torn or
                // corrupted file would fail `load` with a typed error here
                // instead of ever reaching `publish`.
                io::save(&model, &snapshot_path).expect("snapshot save");
                let reloaded = io::load(cfg.clone(), &snapshot_path).expect("snapshot reload");
                let version = service.publish(Retriever::new(reloaded, d.num_items()));
                println!(
                    "trainer: stage {stage}/{STAGES} done (epoch {:>2}, loss {loss:.4}) \
                     → persisted + published snapshot v{version}",
                    stage * EPOCHS_PER_STAGE
                );
            }
            let _ = std::fs::remove_file(&snapshot_path);
            done.store(true, Ordering::Release);
        });

        // 4. Serving loop: hammer the watched user's top-5 and report
        //    every time a hot-swap lands. The version printed is the one
        //    the service had *around* the call — the response itself is
        //    guaranteed coherent regardless of swaps mid-flight.
        let mut last_version = u64::MAX;
        while !done.load(Ordering::Acquire) || service.snapshot_version() != last_version {
            let resp = service.retrieve(&req).expect("service alive");
            let version = service.snapshot_version();
            if version != last_version {
                last_version = version;
                let items: Vec<_> = resp.ranked.iter().map(|&(v, _)| v).collect();
                println!("serving: snapshot v{version}: top-{K} for user {watched} = {items:?}");
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    // 5. Before/after drift: how much of the cold-start list survived
    //    training. Low overlap is the point — the untrained snapshot
    //    ranked by noise, the trained one by the learned facets.
    let after = service.retrieve(&req).expect("service alive").ranked;
    let kept = after
        .iter()
        .filter(|(v, _)| before.iter().any(|(b, _)| b == v))
        .count();
    println!("\nuser {watched} top-{K} drift across {STAGES} hot-swaps:");
    println!("  before (v0, untrained): {:?}", ids(&before));
    println!(
        "  after  (v{}, trained):  {:?}",
        service.snapshot_version(),
        ids(&after)
    );
    println!("  overlap: {kept}/{K} items survived training");
}

fn ids(ranked: &[(u32, f32)]) -> Vec<u32> {
    ranked.iter().map(|&(v, _)| v).collect()
}
