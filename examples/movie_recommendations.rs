//! Movie recommendation scenario — the paper's motivating example.
//!
//! Recreates Figure 1's world: movies belong to genres ("Disaster",
//! "Comedy", "Scary", "Romantic", "Science Fiction"), some to *several* at
//! once (the paper's `Love Actually` is romantic *and* funny), and users
//! like different movies for different reasons. A single-space model is
//! forced into the paper's conflict; the multi-facet model resolves it.
//! The example trains CML-style single-space and MARS side by side,
//! compares them on the same evaluation protocol, and then *serves* both
//! through the retrieval API (`mars-serve`): one batched top-10 pass over
//! every user, whose response lists feed the beyond-accuracy metrics
//! (coverage / exposure Gini / intra-list diversity).
//!
//! ```text
//! cargo run --release --example movie_recommendations
//! ```

use mars_repro::core::{MarsConfig, MultiFacetModel, Trainer};
use mars_repro::data::{generate_latent_metric, ItemId, LatentMetricConfig, UserId};
use mars_repro::metrics::beyond_accuracy::{
    catalogue_coverage, exposure_gini, intra_list_diversity,
};
use mars_repro::metrics::RankingEvaluator;
use mars_repro::runtime::WorkerPool;
use mars_repro::serve::{RecQuery, RecResponse, Retriever};
use mars_repro::tensor::ops;

const GENRES: [&str; 5] = ["Disaster", "Comedy", "Scary", "Romantic", "SciFi"];

fn main() {
    // A latent-metric world with 2 facets ("genre taste" and, say, "cast
    // taste") of 5 clusters each: the same movie sits in different clusters
    // of different facets, which is exactly the paper's Figure 1 conflict.
    let data = generate_latent_metric(
        "movies",
        &LatentMetricConfig {
            num_users: 300,
            num_items: 200,
            num_interactions: 9_000,
            facets: 2,
            clusters_per_facet: 5,
            facet_alpha: 0.25,
            cluster_alpha: 0.15,
            seed: 13,
            ..Default::default()
        },
    );
    let d = &data.dataset;
    println!(
        "movie world: {} users × {} movies, {} interactions",
        d.num_users(),
        d.num_items(),
        d.train.num_interactions()
    );

    // Single metric space (CML-equivalent) vs multi-facet spherical (MARS).
    let mut single = MarsConfig::cml_like(32);
    single.epochs = 20;
    let mut multi = MarsConfig::mars(2, 16); // same total dimension: 32
    multi.epochs = 20;

    let ev = RankingEvaluator::paper();
    let single_model = Trainer::new(single).fit(d).model;
    let single_report = ev.evaluate(&single_model, d);
    let multi_model = Trainer::new(multi).fit(d).model;
    let multi_report = ev.evaluate(&multi_model, d);

    println!("\n                 HR@10    nDCG@10");
    println!(
        "single space     {:.4}   {:.4}",
        single_report.hr_at(10),
        single_report.ndcg_at(10)
    );
    println!(
        "MARS (K=2)       {:.4}   {:.4}",
        multi_report.hr_at(10),
        multi_report.ndcg_at(10)
    );
    let gain = (multi_report.ndcg_at(10) / single_report.ndcg_at(10) - 1.0) * 100.0;
    println!("multi-facet gain: {gain:+.1}% nDCG@10 at equal total dimension");

    // Serve both models through the retrieval API: one batched top-10
    // pass per model over every user with history, fanned across the
    // worker pool. The response lists are what a production front-end
    // would render — and exactly the shape the beyond-accuracy metrics
    // consume.
    let pool = WorkerPool::with_threads(0);
    let users: Vec<UserId> = (0..d.num_users() as UserId)
        .filter(|&u| d.train.user_degree(u) > 0)
        .collect();
    let queries: Vec<RecQuery<'_>> = users
        .iter()
        .map(|&u| RecQuery::top_k(u, 10).excluding(d.train.items_of(u)))
        .collect();
    let top_lists = |model: &MultiFacetModel| -> Vec<Vec<ItemId>> {
        Retriever::new(model.clone(), d.num_items())
            .retrieve_batch(&queries, &pool)
            .iter()
            .map(RecResponse::items)
            .collect()
    };
    let single_lists = top_lists(&single_model);
    let multi_lists = top_lists(&multi_model);

    // Embedding distance for intra-list diversity: mean over facets of
    // (1 − cos) between item facet embeddings of the *MARS* model — a
    // common yardstick applied to both models' lists.
    let mut a = vec![0.0; 16];
    let mut b = vec![0.0; 16];
    let mut distance = |x: ItemId, y: ItemId| -> f32 {
        let mut sum = 0.0;
        for k in 0..2 {
            multi_model.item_facet(x, k, &mut a);
            multi_model.item_facet(y, k, &mut b);
            sum += 1.0 - ops::cosine(&a, &b);
        }
        sum / 2.0
    };
    let mut mean_div = |lists: &[Vec<ItemId>]| -> f32 {
        let sum: f32 = lists
            .iter()
            .map(|l| intra_list_diversity(l, &mut distance))
            .sum();
        sum / lists.len().max(1) as f32
    };

    println!(
        "\nbeyond accuracy over the served top-10 lists ({} users):",
        users.len()
    );
    println!("                 coverage  gini    diversity");
    println!(
        "single space     {:.4}    {:.4}  {:.4}",
        catalogue_coverage(&single_lists, d.num_items()),
        exposure_gini(&single_lists, d.num_items()),
        mean_div(&single_lists)
    );
    println!(
        "MARS (K=2)       {:.4}    {:.4}  {:.4}",
        catalogue_coverage(&multi_lists, d.num_items()),
        exposure_gini(&multi_lists, d.num_items()),
        mean_div(&multi_lists)
    );

    // Show the conflict resolution for one user: their top-5 movies in
    // *each* facet space differ, reflecting facet-specific preferences.
    let user = 2u32;
    let theta = multi_model.theta(user);
    println!("\nuser {user}: facet weights θ = {theta:?}");
    let mut uf = vec![0.0; 16];
    let mut vf = vec![0.0; 16];
    for k in 0..2 {
        multi_model.user_facet(user, k, &mut uf);
        let mut ranked: Vec<(u32, f32)> = (0..d.num_items() as u32)
            .map(|v| {
                multi_model.item_facet(v, k, &mut vf);
                (v, multi_model.facet_similarity(&uf, &vf))
            })
            .collect();
        ranked.sort_by(|a, b| mars_repro::serve::rank_cmp(*a, *b));
        let names: Vec<String> = ranked
            .iter()
            .take(5)
            .map(|(v, _)| {
                // Present the facet-0 cluster as a pseudo-genre label.
                let label = d.item_categories[*v as usize][0] as usize % GENRES.len();
                format!("movie{v}({})", GENRES[label])
            })
            .collect();
        println!("facet {k} top-5: {}", names.join(", "));
    }
}
