//! Movie recommendation scenario — the paper's motivating example.
//!
//! Recreates Figure 1's world: movies belong to genres ("Disaster",
//! "Comedy", "Scary", "Romantic", "Science Fiction"), some to *several* at
//! once (the paper's `Love Actually` is romantic *and* funny), and users
//! like different movies for different reasons. A single-space model is
//! forced into the paper's conflict; the multi-facet model resolves it.
//! The example trains CML-style single-space and MARS side by side and
//! compares them on the same evaluation protocol.
//!
//! ```text
//! cargo run --release --example movie_recommendations
//! ```

use mars_repro::core::{MarsConfig, Trainer};
use mars_repro::data::{generate_latent_metric, LatentMetricConfig};
use mars_repro::metrics::RankingEvaluator;

const GENRES: [&str; 5] = ["Disaster", "Comedy", "Scary", "Romantic", "SciFi"];

fn main() {
    // A latent-metric world with 2 facets ("genre taste" and, say, "cast
    // taste") of 5 clusters each: the same movie sits in different clusters
    // of different facets, which is exactly the paper's Figure 1 conflict.
    let data = generate_latent_metric(
        "movies",
        &LatentMetricConfig {
            num_users: 300,
            num_items: 200,
            num_interactions: 9_000,
            facets: 2,
            clusters_per_facet: 5,
            facet_alpha: 0.25,
            cluster_alpha: 0.15,
            seed: 13,
            ..Default::default()
        },
    );
    let d = &data.dataset;
    println!(
        "movie world: {} users × {} movies, {} interactions",
        d.num_users(),
        d.num_items(),
        d.train.num_interactions()
    );

    // Single metric space (CML-equivalent) vs multi-facet spherical (MARS).
    let mut single = MarsConfig::cml_like(32);
    single.epochs = 20;
    let mut multi = MarsConfig::mars(2, 16); // same total dimension: 32
    multi.epochs = 20;

    let ev = RankingEvaluator::paper();
    let single_model = Trainer::new(single).fit(d).model;
    let single_report = ev.evaluate(&single_model, d);
    let multi_model = Trainer::new(multi).fit(d).model;
    let multi_report = ev.evaluate(&multi_model, d);

    println!("\n                 HR@10    nDCG@10");
    println!(
        "single space     {:.4}   {:.4}",
        single_report.hr_at(10),
        single_report.ndcg_at(10)
    );
    println!(
        "MARS (K=2)       {:.4}   {:.4}",
        multi_report.hr_at(10),
        multi_report.ndcg_at(10)
    );
    let gain = (multi_report.ndcg_at(10) / single_report.ndcg_at(10) - 1.0) * 100.0;
    println!("multi-facet gain: {gain:+.1}% nDCG@10 at equal total dimension");

    // Show the conflict resolution for one user: their top-5 movies in
    // *each* facet space differ, reflecting facet-specific preferences.
    let user = 2u32;
    let theta = multi_model.theta(user);
    println!("\nuser {user}: facet weights θ = {theta:?}");
    let mut uf = vec![0.0; 16];
    let mut vf = vec![0.0; 16];
    for k in 0..2 {
        multi_model.user_facet(user, k, &mut uf);
        let mut ranked: Vec<(u32, f32)> = (0..d.num_items() as u32)
            .map(|v| {
                multi_model.item_facet(v, k, &mut vf);
                (v, multi_model.facet_similarity(&uf, &vf))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let names: Vec<String> = ranked
            .iter()
            .take(5)
            .map(|(v, _)| {
                // Present the facet-0 cluster as a pseudo-genre label.
                let label = d.item_categories[*v as usize][0] as usize % GENRES.len();
                format!("movie{v}({})", GENRES[label])
            })
            .collect();
        println!("facet {k} top-5: {}", names.join(", "));
    }
}
