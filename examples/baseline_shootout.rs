//! Baseline shootout — all eight baselines against MAR and MARS on one
//! dataset, through the public API (a miniature of the paper's Table II).
//!
//! ```text
//! cargo run --release --example baseline_shootout
//! ```

use mars_repro::baselines::{
    bpr::Bpr, cml::Cml, lrml::Lrml, metricf::MetricF, neumf::NeuMf, nmf::Nmf, sml::Sml,
    transcf::TransCf, BaselineConfig, ImplicitRecommender,
};
use mars_repro::core::{MarsConfig, Trainer};
use mars_repro::data::profiles::{Profile, Scale};
use mars_repro::metrics::{RankingEvaluator, Report};

fn main() {
    let data = Profile::Delicious.generate(Scale::Small);
    let d = &data.dataset;
    println!(
        "dataset {}: {} users × {} items",
        d.name,
        d.num_users(),
        d.num_items()
    );

    let ev = RankingEvaluator::paper();
    let n = d.num_users();
    let m = d.num_items();
    let cfg = BaselineConfig {
        dim: 32,
        epochs: 15,
        ..BaselineConfig::default()
    };

    let mut results: Vec<(&str, Report)> = Vec::new();
    macro_rules! bench {
        ($name:expr, $model:expr) => {{
            let mut model = $model;
            model.fit(d);
            let report = ev.evaluate(&model, d);
            println!(
                "{:<8} HR@10 {:.4}  nDCG@10 {:.4}",
                $name,
                report.hr_at(10),
                report.ndcg_at(10)
            );
            results.push(($name, report));
        }};
    }
    bench!("BPR", Bpr::new(cfg.clone(), n, m));
    // Paper convention: NMF's factor count = number of metric spaces (4).
    bench!(
        "NMF",
        Nmf::new(
            BaselineConfig {
                dim: 4,
                ..cfg.clone()
            },
            n,
            m
        )
    );
    bench!(
        "NeuMF",
        NeuMf::new(
            BaselineConfig {
                lr: 0.02,
                ..cfg.clone()
            },
            n,
            m
        )
    );
    bench!("CML", Cml::new(cfg.clone(), n, m));
    bench!("MetricF", MetricF::new(cfg.clone(), n, m));
    bench!("TransCF", TransCf::new(cfg.clone(), n, m));
    bench!("LRML", Lrml::new(cfg.clone(), n, m));
    bench!("SML", Sml::new(cfg.clone(), n, m));

    let mut mar = MarsConfig::mar(4, 32);
    mar.epochs = 15;
    let mar_report = ev.evaluate(&Trainer::new(mar).fit(d).model, d);
    println!(
        "{:<8} HR@10 {:.4}  nDCG@10 {:.4}",
        "MAR",
        mar_report.hr_at(10),
        mar_report.ndcg_at(10)
    );

    let mut mars = MarsConfig::mars(4, 32);
    mars.epochs = 15;
    let mars_report = ev.evaluate(&Trainer::new(mars).fit(d).model, d);
    println!(
        "{:<8} HR@10 {:.4}  nDCG@10 {:.4}",
        "MARS",
        mars_report.hr_at(10),
        mars_report.ndcg_at(10)
    );

    let best_base = results
        .iter()
        .map(|(_, r)| r.ndcg_at(10))
        .fold(f32::NEG_INFINITY, f32::max);
    println!(
        "\nMAR  vs best baseline nDCG@10: {:+.2}%",
        (mar_report.ndcg_at(10) / best_base - 1.0) * 100.0
    );
    println!(
        "MARS vs best baseline nDCG@10: {:+.2}%",
        (mars_report.ndcg_at(10) / best_base - 1.0) * 100.0
    );
}
