//! Beyond-accuracy analysis: does resolving multi-facet conflicts make
//! recommendations more diverse?
//!
//! The paper motivates MARS with users who like items *for different
//! reasons*. A single-space model serving such a user tends to collapse
//! onto one of their interests; a multi-facet model can cover several. This
//! example measures that with catalogue coverage, exposure Gini and
//! embedding-based intra-list diversity over top-10 lists from a
//! single-space model vs MARS, plus a k-means segmentation of the learned
//! item space (the paper's §VI segmentation idea).
//!
//! ```text
//! cargo run --release --example diversity_analysis
//! ```

use mars_repro::core::analysis::segment_items;
use mars_repro::core::{MarsConfig, Trainer};
use mars_repro::data::profiles::{Profile, Scale};
use mars_repro::metrics::beyond_accuracy::{
    catalogue_coverage, exposure_gini, intra_list_diversity,
};
use mars_repro::tensor::ops;

fn main() {
    let data = Profile::Ciao.generate(Scale::Small);
    let d = &data.dataset;
    println!(
        "dataset {}: {} users × {} items",
        d.name,
        d.num_users(),
        d.num_items()
    );

    let mut single_cfg = MarsConfig::cml_like(32);
    single_cfg.epochs = 20;
    let mut mars_cfg = MarsConfig::mars(4, 32);
    mars_cfg.epochs = 20;

    println!("training single-space and MARS models...");
    let single = Trainer::new(single_cfg).fit(d).model;
    let mars = Trainer::new(mars_cfg).fit(d).model;

    // Top-10 lists for every user with training history.
    let top_lists = |model: &mars_repro::core::MultiFacetModel| -> Vec<Vec<u32>> {
        (0..d.num_users() as u32)
            .filter(|&u| d.train.user_degree(u) > 0)
            .map(|u| {
                model
                    .recommend(u, d.train.items_of(u), 10)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            })
            .collect()
    };
    let single_lists = top_lists(&single);
    let mars_lists = top_lists(&mars);

    // Embedding distance for intra-list diversity: mean over facets of
    // (1 − cos) between item facet embeddings of the *MARS* model — a
    // common yardstick applied to both models' lists.
    let dim = 32;
    let mut a = vec![0.0; dim];
    let mut b = vec![0.0; dim];
    let mut distance = |x: u32, y: u32| -> f32 {
        let mut sum = 0.0;
        for k in 0..4 {
            mars.item_facet(x, k, &mut a);
            mars.item_facet(y, k, &mut b);
            sum += 1.0 - ops::cosine(&a, &b);
        }
        sum / 4.0
    };

    let mean_div = |lists: &[Vec<u32>], dist: &mut dyn FnMut(u32, u32) -> f32| -> f32 {
        let sum: f32 = lists
            .iter()
            .map(|l| intra_list_diversity(l, &mut *dist))
            .sum();
        sum / lists.len().max(1) as f32
    };

    println!("\n                   single-space   MARS");
    println!(
        "coverage           {:.4}         {:.4}",
        catalogue_coverage(&single_lists, d.num_items()),
        catalogue_coverage(&mars_lists, d.num_items())
    );
    println!(
        "exposure Gini      {:.4}         {:.4}   (lower = fairer)",
        exposure_gini(&single_lists, d.num_items()),
        exposure_gini(&mars_lists, d.num_items())
    );
    println!(
        "intra-list div.    {:.4}         {:.4}   (higher = more diverse)",
        mean_div(&single_lists, &mut distance),
        mean_div(&mars_lists, &mut distance)
    );

    // Segmentation of the learned MARS item space (paper §VI).
    let (assignment, purity) = segment_items(&mars, d, 8, 7);
    let mut sizes = vec![0usize; 8];
    for &c in &assignment {
        sizes[c] += 1;
    }
    println!("\nk-means segmentation of the MARS item space (k=8):");
    println!("cluster sizes: {sizes:?}");
    if let Some(p) = purity {
        println!("category purity: {:.3} (majority-category match rate)", p);
    }
}
