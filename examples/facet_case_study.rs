//! Facet case study — the paper's §V-E analysis on a trained MARS model:
//! which categories each facet space captures (Table V), what individual
//! user profiles look like (Table VI), and how well categories separate in
//! each space (the quantitative claim behind Figure 7).
//!
//! ```text
//! cargo run --release --example facet_case_study
//! ```

use mars_repro::core::analysis::{
    category_proportions, facet_item_matrix, separation_stats, user_profile,
};
use mars_repro::core::{MarsConfig, Trainer};
use mars_repro::data::profiles::{Profile, Scale};

fn main() {
    let data = Profile::Ciao.generate(Scale::Small);
    let d = &data.dataset;
    println!(
        "Ciao stand-in: {} items, {} planted categories",
        d.num_items(),
        d.num_categories
    );

    let mut cfg = MarsConfig::mars(4, 32);
    cfg.epochs = 20;
    println!("training MARS(K=4, D=32)...");
    let model = Trainer::new(cfg).fit(d).model;

    // --- Table V style: top categories per facet space ------------------
    println!("\n== top-3 categories per facet space ==");
    for (facet, shares) in category_proportions(&model, d, 3).iter().enumerate() {
        let cells: Vec<String> = shares
            .iter()
            .map(|s| format!("cat-{} ({:.1}%)", s.category, s.proportion * 100.0))
            .collect();
        println!("facet {facet}: {}", cells.join("  "));
    }

    // --- Table VI style: profiles of two active users -------------------
    println!("\n== user profiles ==");
    let mut users: Vec<u32> = (0..d.num_users() as u32).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(d.train.user_degree(u)));
    for &u in users.iter().take(2) {
        let p = user_profile(&model, d, u);
        println!(
            "user {u} ({} interactions): θ = {:?}",
            d.train.user_degree(u),
            p.theta
                .iter()
                .map(|t| format!("{t:.2}"))
                .collect::<Vec<_>>()
        );
        let cats: Vec<String> = p
            .category_counts
            .iter()
            .take(4)
            .map(|(c, n)| format!("cat-{c}: {n}"))
            .collect();
        println!("         interacted: {}", cats.join("; "));
    }

    // --- Figure 7 style: category separation per space -------------------
    println!("\n== category separation (inter/intra distance ratio) ==");
    for facet in 0..4 {
        let emb = facet_item_matrix(&model, facet);
        let s = separation_stats(&emb, &d.item_categories, 1);
        println!(
            "facet {facet}: intra {:.3}  inter {:.3}  ratio {:.3}",
            s.intra,
            s.inter,
            s.ratio()
        );
    }
    println!("\nratios > 1 mean same-category items sit closer than cross-category\nitems in that facet space — the geometric structure Figure 7 visualizes.");
}
