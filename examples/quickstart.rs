//! Quickstart: generate a small implicit-feedback dataset, train MARS, and
//! produce top-N recommendations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mars_repro::core::{MarsConfig, Trainer};
use mars_repro::data::{SyntheticConfig, SyntheticDataset};
use mars_repro::metrics::RankingEvaluator;
use mars_repro::serve::{RecQuery, Retriever};

fn main() {
    // 1. Data: a planted multi-facet world — 200 users, 150 items, 6
    //    latent categories; each user mixes a few categories.
    let data = SyntheticDataset::generate(
        "quickstart",
        &SyntheticConfig {
            num_users: 200,
            num_items: 150,
            num_interactions: 6_000,
            num_categories: 6,
            dirichlet_alpha: 0.25,
            seed: 1,
            ..Default::default()
        },
    );
    let d = &data.dataset;
    println!(
        "dataset: {} users × {} items, {} train interactions ({:.2}% dense)",
        d.num_users(),
        d.num_items(),
        d.train.num_interactions(),
        d.train.density() * 100.0
    );

    // 2. Model: MARS with K=3 facet spaces of dimension 16, trained with
    //    calibrated Riemannian SGD on the unit sphere.
    let mut cfg = MarsConfig::mars(3, 16);
    cfg.epochs = 15;
    let outcome = Trainer::new(cfg).with_dev_tracking(5).fit(d);
    for stats in &outcome.history {
        if let Some(hr) = stats.dev_hr10 {
            println!(
                "epoch {:>2}: loss {:.4}, dev HR@10 {:.4}",
                stats.epoch, stats.mean_loss, hr
            );
        }
    }
    let model = outcome.model;

    // 3. Evaluate with the paper's protocol: leave-one-out, 100 sampled
    //    negatives, HR/nDCG at 10 and 20.
    let report = RankingEvaluator::paper().evaluate(&model, d);
    println!(
        "test: HR@10 {:.4}  HR@20 {:.4}  nDCG@10 {:.4}  nDCG@20 {:.4}  ({} cases)",
        report.hr_at(10),
        report.hr_at(20),
        report.ndcg_at(10),
        report.ndcg_at(20),
        report.cases
    );

    // 4. Serve: wrap the frozen model in a Retriever (the snapshot is
    //    Arc-shared, so serving threads would each clone the handle) and
    //    ask for the top-5 unseen items through the retrieval API.
    let user = 0;
    let retriever = Retriever::new(model, d.num_items());
    let response = retriever.retrieve(&RecQuery::top_k(user, 5).excluding(d.train.items_of(user)));
    println!("\ntop-5 recommendations for user {user}:");
    for &(v, s) in &response.ranked {
        println!(
            "  item {v:>4}  score {s:.4}  categories {:?}",
            d.item_categories[v as usize]
        );
    }
    let model = retriever.model();

    // 5. Peek at the learned facet weights — the user's preference profile.
    println!(
        "\nfacet weights θ_u of user {user}: {:?}",
        model.theta(user)
    );
}
